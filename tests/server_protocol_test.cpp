// Wire protocol codec: round-trips for every verb, framing across partial
// buffers, and loud failure on truncated/oversized/trailing-byte payloads.
#include "server/protocol.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace {

using namespace hcmd::server;
namespace proto = hcmd::server::proto;

proto::Frame extract_one(const std::vector<std::uint8_t>& buf) {
  std::size_t off = 0;
  const std::optional<proto::Frame> f = proto::try_extract(buf, off);
  EXPECT_TRUE(f.has_value());
  EXPECT_EQ(off, buf.size());
  return *f;
}

TEST(Protocol, RequestWorkRoundTrip) {
  proto::RequestWork m;
  m.device = 0xDEADBEEFu;
  m.seq = 0x0123456789ABCDEFull;
  std::vector<std::uint8_t> buf;
  proto::encode(m, buf);
  const proto::RequestWork d = proto::decode_request_work(extract_one(buf));
  EXPECT_EQ(d.device, m.device);
  EXPECT_EQ(d.seq, m.seq);
}

TEST(Protocol, ReportResultRoundTrip) {
  proto::ReportResult m;
  m.device = 7;
  m.seq = 9001;
  m.result_id = 123456789;
  m.reported_runtime = 86400.125;
  m.reference_seconds = 14400.0;
  m.corruption_tag = (7ull << 32) | 3u;
  m.computation_error = false;
  m.silent_error = true;
  std::vector<std::uint8_t> buf;
  proto::encode(m, buf);
  const proto::ReportResult d = proto::decode_report_result(extract_one(buf));
  EXPECT_EQ(d.device, m.device);
  EXPECT_EQ(d.seq, m.seq);
  EXPECT_EQ(d.result_id, m.result_id);
  EXPECT_EQ(d.reported_runtime, m.reported_runtime);
  EXPECT_EQ(d.reference_seconds, m.reference_seconds);
  EXPECT_EQ(d.corruption_tag, m.corruption_tag);
  EXPECT_EQ(d.computation_error, m.computation_error);
  EXPECT_EQ(d.silent_error, m.silent_error);

  // The ResultReport bridge carries every field the validator reads.
  const ResultReport r = d.to_report();
  EXPECT_EQ(r.silent_error, m.silent_error);
  EXPECT_EQ(r.corruption_tag, m.corruption_tag);
  EXPECT_EQ(r.reported_runtime, m.reported_runtime);
}

TEST(Protocol, AssignmentRoundTrip) {
  proto::Assignment m;
  m.device = 3;
  m.seq = 44;
  m.result_id = 991;
  m.workunit = 123456;
  m.receptor = 167;
  m.ligand = 42;
  m.isep_begin = 100;
  m.isep_end = 164;
  m.reference_seconds = 14400.5;
  m.deadline = 864000.0;
  std::vector<std::uint8_t> buf;
  proto::encode(m, buf);
  const proto::Assignment d = proto::decode_assignment(extract_one(buf));
  EXPECT_EQ(d.workunit, m.workunit);
  EXPECT_EQ(d.receptor, m.receptor);
  EXPECT_EQ(d.ligand, m.ligand);
  EXPECT_EQ(d.isep_begin, m.isep_begin);
  EXPECT_EQ(d.isep_end, m.isep_end);
  EXPECT_EQ(d.reference_seconds, m.reference_seconds);
  EXPECT_EQ(d.deadline, m.deadline);
}

TEST(Protocol, SmallMessageRoundTrips) {
  std::vector<std::uint8_t> buf;

  proto::NoWork nw;
  nw.device = 1;
  nw.seq = 2;
  nw.project_complete = true;
  proto::encode(nw, buf);
  EXPECT_TRUE(proto::decode_no_work(extract_one(buf)).project_complete);
  buf.clear();

  proto::Busy busy;
  busy.device = 5;
  busy.seq = 6;
  busy.retry_after = 245000.0;
  proto::encode(busy, buf);
  EXPECT_EQ(proto::decode_busy(extract_one(buf)).retry_after, 245000.0);
  buf.clear();

  proto::ReportAck ack;
  ack.device = 8;
  ack.seq = 9;
  ack.state = ResultState::kRedundant;
  ack.duplicate = true;
  proto::encode(ack, buf);
  const proto::ReportAck dack = proto::decode_report_ack(extract_one(buf));
  EXPECT_EQ(dack.state, ResultState::kRedundant);
  EXPECT_TRUE(dack.duplicate);
  buf.clear();

  proto::ErrorMsg err;
  err.device = 10;
  err.seq = 11;
  err.code = proto::ErrorCode::kUnknownResult;
  proto::encode(err, buf);
  EXPECT_EQ(proto::decode_error(extract_one(buf)).code,
            proto::ErrorCode::kUnknownResult);
}

TEST(Protocol, StatusRoundTrip) {
  proto::Status m;
  m.device = 0;
  m.seq = 1;
  m.results_sent = 10;
  m.results_received = 9;
  m.results_valid = 8;
  m.results_invalid = 1;
  m.results_timed_out = 2;
  m.workunits_completed = 7;
  m.workunits_total = 100;
  m.outage_denied = 3;
  m.rpc_requests = 20;
  m.now = 1234.5;
  m.complete = false;
  std::vector<std::uint8_t> buf;
  proto::encode(m, buf);
  const proto::Status d = proto::decode_status(extract_one(buf));
  EXPECT_EQ(d.results_sent, 10u);
  EXPECT_EQ(d.results_received, 9u);
  EXPECT_EQ(d.workunits_total, 100u);
  EXPECT_EQ(d.outage_denied, 3u);
  EXPECT_EQ(d.rpc_requests, 20u);
  EXPECT_EQ(d.now, 1234.5);
}

// A streaming peer delivers bytes in arbitrary chunks: feeding the buffer
// one byte at a time must yield exactly the encoded frames, in order.
TEST(Protocol, ByteAtATimeFraming) {
  std::vector<std::uint8_t> stream;
  proto::RequestWork a;
  a.device = 1;
  a.seq = 1;
  proto::encode(a, stream);
  proto::GetStatus b;
  b.device = 2;
  b.seq = 2;
  proto::encode(b, stream);

  std::vector<std::uint8_t> buf;
  std::size_t off = 0;
  int frames = 0;
  for (const std::uint8_t byte : stream) {
    buf.push_back(byte);
    while (true) {
      const std::optional<proto::Frame> f = proto::try_extract(buf, off);
      if (!f.has_value()) break;
      ++frames;
      if (frames == 1)
        EXPECT_EQ(proto::decode_request_work(*f).device, 1u);
      else
        EXPECT_EQ(proto::decode_get_status(*f).device, 2u);
    }
  }
  EXPECT_EQ(frames, 2);
  EXPECT_EQ(off, stream.size());
}

TEST(Protocol, RejectsZeroAndOversizedLengths) {
  // Zero length prefix.
  std::vector<std::uint8_t> zero{0, 0, 0, 0};
  std::size_t off = 0;
  EXPECT_THROW(proto::try_extract(zero, off), hcmd::ParseError);

  // Length beyond kMaxFrameBytes — rejected before buffering, which is the
  // flood control of a length-prefixed protocol.
  const std::uint32_t big = proto::kMaxFrameBytes + 1;
  std::vector<std::uint8_t> huge{
      static_cast<std::uint8_t>(big), static_cast<std::uint8_t>(big >> 8),
      static_cast<std::uint8_t>(big >> 16),
      static_cast<std::uint8_t>(big >> 24)};
  off = 0;
  EXPECT_THROW(proto::try_extract(huge, off), hcmd::ParseError);
}

TEST(Protocol, TruncatedPayloadThrows) {
  std::vector<std::uint8_t> buf;
  proto::ReportResult m;
  proto::encode(m, buf);
  // Shrink the payload but fix up the length prefix so the frame extracts.
  buf.resize(buf.size() - 8);
  const std::uint32_t len = static_cast<std::uint32_t>(buf.size() - 4);
  for (int i = 0; i < 4; ++i)
    buf[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(len >> (8 * i));
  std::size_t off = 0;
  const std::optional<proto::Frame> f = proto::try_extract(buf, off);
  ASSERT_TRUE(f.has_value());
  EXPECT_THROW(proto::decode_report_result(*f), hcmd::ParseError);
}

/// Appends `extra` raw bytes to the encoded frame in `buf` and patches the
/// length prefix so the frame still extracts.
proto::Frame widen_frame(std::vector<std::uint8_t>& buf,
                         std::initializer_list<std::uint8_t> extra) {
  for (const std::uint8_t b : extra) buf.push_back(b);
  const std::uint32_t len = static_cast<std::uint32_t>(buf.size() - 4);
  for (int i = 0; i < 4; ++i)
    buf[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(len >> (8 * i));
  std::size_t off = 0;
  const std::optional<proto::Frame> f = proto::try_extract(buf, off);
  EXPECT_TRUE(f.has_value());
  return *f;
}

TEST(Protocol, TrailingBytesThrow) {
  // A layout mismatch between peers must fail loudly, not silently ignore
  // the extra fields. One trailing byte on a request is the 1.1 flags tail
  // (tested separately); two junk bytes fit no known tail and must throw.
  std::vector<std::uint8_t> buf;
  proto::RequestWork m;
  const proto::Frame f = widen_frame((proto::encode(m, buf), buf),
                                     {0xAA, 0xBB});
  EXPECT_THROW(proto::decode_request_work(f), hcmd::ParseError);

  // Responses accept only the exact 32-byte span tail: any other trailing
  // size is a layout mismatch.
  std::vector<std::uint8_t> rbuf;
  proto::NoWork nw;
  const proto::Frame rf = widen_frame((proto::encode(nw, rbuf), rbuf),
                                      {1, 2, 3});
  EXPECT_THROW(proto::decode_no_work(rf), hcmd::ParseError);
}

TEST(Protocol, OneTrailingByteIsTheFlagsTail) {
  // A 1.1 peer appending a flags byte decodes on this build; a 1.0-encoded
  // frame (no tail) decodes with flags == 0. That pair is the compat
  // contract.
  std::vector<std::uint8_t> buf;
  proto::RequestWork m;
  const proto::Frame f = widen_frame((proto::encode(m, buf), buf),
                                     {proto::kFlagWantSpan});
  EXPECT_EQ(proto::decode_request_work(f).flags, proto::kFlagWantSpan);
}

TEST(Protocol, FlagsRoundTripOnRequestVerbs) {
  std::vector<std::uint8_t> buf;
  proto::RequestWork rw;
  rw.flags = proto::kFlagWantSpan;
  proto::encode(rw, buf);
  EXPECT_EQ(proto::decode_request_work(extract_one(buf)).flags,
            proto::kFlagWantSpan);
  buf.clear();

  proto::ReportResult rr;
  rr.flags = proto::kFlagWantSpan;
  proto::encode(rr, buf);
  EXPECT_EQ(proto::decode_report_result(extract_one(buf)).flags,
            proto::kFlagWantSpan);
  buf.clear();

  proto::GetStatus gs;
  gs.flags = proto::kFlagWantSpan;
  proto::encode(gs, buf);
  EXPECT_EQ(proto::decode_get_status(extract_one(buf)).flags,
            proto::kFlagWantSpan);
}

TEST(Protocol, FlaglessEncodingIsByteIdenticalToProtocol10) {
  // flags == 0 must encode to the 1.0 frame layout, byte for byte lengths:
  // 4 (len) + 1 (verb) + payload. These sizes are pinned so a silent tail
  // can never sneak into the default encoding.
  std::vector<std::uint8_t> buf;
  proto::RequestWork rw;
  proto::encode(rw, buf);
  EXPECT_EQ(buf.size(), 4u + 1u + 12u);  // device u32 + seq u64
  buf.clear();
  proto::GetStatus gs;
  proto::encode(gs, buf);
  EXPECT_EQ(buf.size(), 4u + 1u + 12u);
  buf.clear();
  proto::NoWork nw;
  proto::encode(nw, buf);
  EXPECT_EQ(buf.size(), 4u + 1u + 13u);  // device + seq + bool
}

TEST(Protocol, SpanBlockRoundTripsOnFleetResponses) {
  const proto::SpanBlock span{1.5, 1.625, 2.0, 2.25};
  std::vector<std::uint8_t> buf;

  proto::Assignment a;
  a.device = 3;
  a.seq = 4;
  a.span = span;
  proto::encode(a, buf);
  const proto::Assignment da = proto::decode_assignment(extract_one(buf));
  ASSERT_TRUE(da.span.has_value());
  EXPECT_EQ(da.span->t_read, 1.5);
  EXPECT_EQ(da.span->t_enqueue, 1.625);
  EXPECT_EQ(da.span->t_dequeue, 2.0);
  EXPECT_EQ(da.span->t_decision, 2.25);
  buf.clear();

  proto::Busy b;
  b.retry_after = 60.0;
  b.span = span;
  proto::encode(b, buf);
  const proto::Busy db = proto::decode_busy(extract_one(buf));
  ASSERT_TRUE(db.span.has_value());
  EXPECT_EQ(db.span->t_decision, 2.25);
  EXPECT_EQ(db.retry_after, 60.0);
  buf.clear();

  // Absent span stays absent.
  proto::ReportAck ack;
  proto::encode(ack, buf);
  EXPECT_FALSE(proto::decode_report_ack(extract_one(buf)).span.has_value());
}

TEST(Protocol, StatusExtendedFieldsRoundTrip) {
  proto::Status m;
  m.uptime_seconds = 12.5;
  m.rpc_assignments = 1;
  m.rpc_no_work = 2;
  m.rpc_busy = 3;
  m.rpc_reports = 4;
  m.rpc_duplicate_reports = 5;
  m.rpc_status = 6;
  m.rpc_errors = 7;
  m.policy = 1;  // server runs the adaptive validation policy
  m.span = proto::SpanBlock{0.5, 0.5, 1.0, 1.5};
  std::vector<std::uint8_t> buf;
  proto::encode(m, buf);
  const proto::Status d = proto::decode_status(extract_one(buf));
  EXPECT_EQ(d.uptime_seconds, 12.5);
  EXPECT_EQ(d.rpc_assignments, 1u);
  EXPECT_EQ(d.rpc_no_work, 2u);
  EXPECT_EQ(d.rpc_busy, 3u);
  EXPECT_EQ(d.rpc_reports, 4u);
  EXPECT_EQ(d.rpc_duplicate_reports, 5u);
  EXPECT_EQ(d.rpc_status, 6u);
  EXPECT_EQ(d.rpc_errors, 7u);
  EXPECT_EQ(d.policy, 1);
  ASSERT_TRUE(d.span.has_value());
  EXPECT_EQ(d.span->t_dequeue, 1.0);
}

TEST(Protocol, MetricsVerbsRoundTrip) {
  std::vector<std::uint8_t> buf;

  proto::GetMetrics gm;
  gm.device = 1;
  gm.seq = 2;
  gm.format = proto::MetricsFormat::kJson;
  proto::encode(gm, buf);
  const proto::GetMetrics dgm = proto::decode_get_metrics(extract_one(buf));
  EXPECT_EQ(dgm.device, 1u);
  EXPECT_EQ(dgm.seq, 2u);
  EXPECT_EQ(dgm.format, proto::MetricsFormat::kJson);
  buf.clear();

  proto::Metrics me;
  me.device = 1;
  me.seq = 2;
  me.format = proto::MetricsFormat::kPrometheus;
  me.text = "# TYPE hcmd_rpc_requests_total counter\n"
            "hcmd_rpc_requests_total 9\n";
  proto::encode(me, buf);
  const proto::Metrics dme = proto::decode_metrics(extract_one(buf));
  EXPECT_EQ(dme.format, proto::MetricsFormat::kPrometheus);
  EXPECT_EQ(dme.text, me.text);
}

TEST(Protocol, DiagnosticsVerbsRoundTrip) {
  std::vector<std::uint8_t> buf;

  proto::DumpDiagnostics dd;
  dd.device = 9;
  dd.seq = 10;
  proto::encode(dd, buf);
  const proto::DumpDiagnostics ddd =
      proto::decode_dump_diagnostics(extract_one(buf));
  EXPECT_EQ(ddd.device, 9u);
  EXPECT_EQ(ddd.seq, 10u);
  buf.clear();

  proto::DiagnosticsAck da;
  da.device = 9;
  da.seq = 10;
  da.events = 16384;
  da.path = "flight-1234.jsonl";
  proto::encode(da, buf);
  const proto::DiagnosticsAck dda =
      proto::decode_diagnostics_ack(extract_one(buf));
  EXPECT_EQ(dda.events, 16384u);
  EXPECT_EQ(dda.path, "flight-1234.jsonl");
}

TEST(Protocol, WrongVerbThrows) {
  std::vector<std::uint8_t> buf;
  proto::RequestWork m;
  proto::encode(m, buf);
  EXPECT_THROW(proto::decode_get_status(extract_one(buf)), hcmd::ParseError);
}

TEST(Protocol, IncompleteFrameReturnsNullopt) {
  std::vector<std::uint8_t> buf;
  proto::Assignment m;
  proto::encode(m, buf);
  const std::size_t full = buf.size();
  for (std::size_t cut = 0; cut < full; ++cut) {
    std::vector<std::uint8_t> part(buf.begin(),
                                   buf.begin() + static_cast<std::ptrdiff_t>(cut));
    std::size_t off = 0;
    if (cut < 4) {
      EXPECT_FALSE(proto::try_extract(part, off).has_value());
    } else {
      EXPECT_FALSE(proto::try_extract(part, off).has_value());
      EXPECT_EQ(off, 0u);
    }
  }
}

}  // namespace
