#include "timing/mct_matrix.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/duration.hpp"
#include "util/error.hpp"

namespace hcmd::timing {
namespace {

const proteins::Benchmark& paper_benchmark() {
  static const proteins::Benchmark bench = proteins::generate_benchmark({});
  return bench;
}

const MctMatrix& paper_matrix() {
  static const MctMatrix mct = MctMatrix::from_model(
      paper_benchmark(), CostModel::calibrated(paper_benchmark()));
  return mct;
}

TEST(MctMatrix, RejectsWrongSize) {
  EXPECT_THROW(MctMatrix(3, std::vector<double>(8, 1.0)), hcmd::ConfigError);
}

TEST(MctMatrix, RejectsNonPositiveEntries) {
  EXPECT_THROW(MctMatrix(2, {1.0, 2.0, 0.0, 3.0}), hcmd::ConfigError);
}

TEST(MctMatrix, AtAccessesRowMajor) {
  const MctMatrix m(2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
  EXPECT_THROW(m.at(2, 0), std::logic_error);
}

TEST(MctMatrix, Table1Statistics) {
  // Paper Table 1: average 671, std 968, min 6, max 46,347, median 384.
  const util::Summary s = paper_matrix().summary();
  EXPECT_EQ(s.count, 168u * 168u);  // the 28,224 evaluations of Section 4.1
  EXPECT_NEAR(s.mean, 671.0, 0.02 * 671.0);    // calibrated
  EXPECT_NEAR(s.stddev, 968.0, 0.25 * 968.0);  // emergent
  EXPECT_LT(s.min, 60.0);
  EXPECT_GT(s.max, 15'000.0);
  EXPECT_NEAR(s.median, 384.0, 0.25 * 384.0);
}

TEST(MctMatrix, Formula1TotalNear1488Years) {
  // "It needs more than 14 centuries ... 1,488:237:19:45:54 (y:d:h:m:s)".
  const double total =
      paper_matrix().total_reference_seconds(paper_benchmark());
  const double paper = util::parse_ydhms("1488:237:19:45:54");
  EXPECT_NEAR(total, paper, 0.10 * paper);
}

TEST(MctMatrix, TopTenReceptorsDominateLikeThePaper) {
  // "there are 10 proteins which represent 30% of the total processing
  // time" — heavy concentration is the load-bearing property.
  const double share =
      paper_matrix().top_k_receptor_share(paper_benchmark(), 10);
  EXPECT_GT(share, 0.25);
  EXPECT_LT(share, 0.55);
}

TEST(MctMatrix, TopKShareMonotoneInK) {
  const auto& m = paper_matrix();
  double prev = 0.0;
  for (std::size_t k : {1u, 5u, 10u, 50u, 168u}) {
    const double share = m.top_k_receptor_share(paper_benchmark(), k);
    EXPECT_GE(share, prev);
    prev = share;
  }
  EXPECT_NEAR(prev, 1.0, 1e-9);
}

TEST(MctMatrix, PerReceptorSumsToTotal) {
  const auto per = paper_matrix().per_receptor_seconds(paper_benchmark());
  const double sum = std::accumulate(per.begin(), per.end(), 0.0);
  EXPECT_NEAR(sum, paper_matrix().total_reference_seconds(paper_benchmark()),
              1e-3);
}

TEST(MctMatrix, FromModelMatchesModelEntries) {
  proteins::BenchmarkSpec spec;
  spec.count = 8;
  spec.target_total_nsep = 0;
  spec.outlier_nsep_target = 0;
  const auto bench = proteins::generate_benchmark(spec);
  const CostModel model = CostModel::calibrated(bench, 100.0);
  const MctMatrix m = MctMatrix::from_model(bench, model);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      EXPECT_DOUBLE_EQ(m.at(i, j),
                       model.mct_entry(bench.proteins[i], bench.proteins[j]));
}

TEST(MctMatrix, AsymmetricEntries) {
  const auto& m = paper_matrix();
  // Find at least one asymmetric pair (docking order matters).
  bool found = false;
  for (std::size_t i = 0; i < 10 && !found; ++i)
    for (std::size_t j = i + 1; j < 10 && !found; ++j)
      if (m.at(i, j) != m.at(j, i)) found = true;
  EXPECT_TRUE(found);
}

TEST(MctMatrix, MinEntryNearPaperMinimum) {
  // Table 1 min is 6 s: the two smallest proteins' couple.
  EXPECT_LT(paper_matrix().summary().min, 30.0);
  EXPECT_GT(paper_matrix().summary().min, 0.5);
}

}  // namespace
}  // namespace hcmd::timing
