#include "docking/cell_list.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "proteins/generator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hcmd::docking {
namespace {

using proteins::Dof6;
using proteins::ReducedProtein;

TEST(CellList, RejectsBadConstruction) {
  const auto receptor = proteins::generate_protein(1, 50, 1.0, 31);
  EXPECT_THROW(ReceptorCellGrid(receptor, 0.0), hcmd::ConfigError);
  const ReducedProtein empty;
  EXPECT_THROW(ReceptorCellGrid(empty, 10.0), hcmd::ConfigError);
}

TEST(CellList, RejectsCutoffLargerThanCell) {
  const auto receptor = proteins::generate_protein(1, 50, 1.0, 31);
  const auto ligand = proteins::generate_protein(2, 20, 1.0, 32);
  EnergyParams params;
  params.cutoff = 24.0;
  ReceptorCellGrid grid(receptor, 12.0);  // cell edge below params.cutoff
  Dof6 pose;
  EXPECT_THROW(grid.interaction_energy(ligand, pose.to_transform(), params),
               hcmd::ConfigError);
}

TEST(CellList, MatchesBruteForceAtContact) {
  const auto receptor = proteins::generate_protein(1, 200, 1.2, 33);
  const auto ligand = proteins::generate_protein(2, 80, 1.0, 34);
  const EnergyParams params;
  const ReceptorCellGrid grid(receptor, params.cutoff);
  Dof6 pose;
  pose.x = receptor.bounding_radius() + 2.0;  // partially overlapping
  const auto brute = interaction_energy(receptor, ligand,
                                        pose.to_transform(), params);
  const auto fast =
      grid.interaction_energy(ligand, pose.to_transform(), params);
  EXPECT_NEAR(fast.lj, brute.lj, 1e-9 * std::max(1.0, std::abs(brute.lj)));
  EXPECT_NEAR(fast.elec, brute.elec,
              1e-9 * std::max(1.0, std::abs(brute.elec)));
}

TEST(CellList, MatchesBruteForceFarApart) {
  const auto receptor = proteins::generate_protein(1, 100, 1.0, 35);
  const auto ligand = proteins::generate_protein(2, 40, 1.0, 36);
  const EnergyParams params;
  const ReceptorCellGrid grid(receptor, params.cutoff);
  Dof6 pose;
  pose.x = receptor.bounding_radius() + ligand.bounding_radius() +
           2.0 * params.cutoff;  // everything outside the cutoff
  const auto fast =
      grid.interaction_energy(ligand, pose.to_transform(), params);
  EXPECT_DOUBLE_EQ(fast.lj, 0.0);
  EXPECT_DOUBLE_EQ(fast.elec, 0.0);
}

TEST(CellList, InspectsFarFewerPairsOnLargeReceptors) {
  const auto receptor = proteins::generate_protein(1, 1500, 1.0, 37);
  const auto ligand = proteins::generate_protein(2, 60, 1.0, 38);
  const EnergyParams params;
  const ReceptorCellGrid grid(receptor, params.cutoff);
  Dof6 pose;
  pose.x = receptor.bounding_radius() + 5.0;
  WorkCounter brute_work, fast_work;
  interaction_energy(receptor, ligand, pose.to_transform(), params,
                     &brute_work);
  grid.interaction_energy(ligand, pose.to_transform(), params, &fast_work);
  // Nominal cost-model work is backend independent; the pruning win shows
  // in the pairs actually examined. Both backends evaluate exactly the
  // within-cutoff pairs.
  EXPECT_EQ(fast_work.pair_terms, brute_work.pair_terms);
  EXPECT_LT(fast_work.inspected_pairs, brute_work.inspected_pairs / 2);
  EXPECT_EQ(fast_work.within_cutoff_pairs, brute_work.within_cutoff_pairs);
}

TEST(CellList, GridDimensionsCoverReceptor) {
  const auto receptor = proteins::generate_protein(1, 600, 1.8, 39);
  const ReceptorCellGrid grid(receptor, 10.0);
  EXPECT_GE(grid.cell_count(), 8u);  // an elongated 40+ A protein spans cells
}

/// Property sweep: equality with brute force over random poses, including
/// poses that put ligand atoms outside the receptor's bounding box.
class CellListPoseSweep : public ::testing::TestWithParam<int> {};

TEST_P(CellListPoseSweep, MatchesBruteForce) {
  const auto receptor = proteins::generate_protein(1, 300, 1.3, 41);
  const auto ligand = proteins::generate_protein(2, 70, 1.0, 42);
  const EnergyParams params;
  const ReceptorCellGrid grid(receptor, params.cutoff);
  util::Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  Dof6 pose;
  pose.x = rng.uniform(-1.5, 1.5) * receptor.bounding_radius();
  pose.y = rng.uniform(-1.5, 1.5) * receptor.bounding_radius();
  pose.z = rng.uniform(-1.5, 1.5) * receptor.bounding_radius();
  pose.alpha = rng.uniform(0.0, 6.28);
  pose.beta = rng.uniform(0.0, 3.14);
  pose.gamma = rng.uniform(0.0, 6.28);
  const auto brute = interaction_energy(receptor, ligand,
                                        pose.to_transform(), params);
  const auto fast =
      grid.interaction_energy(ligand, pose.to_transform(), params);
  const double scale =
      std::max({1.0, std::abs(brute.lj), std::abs(brute.elec)});
  EXPECT_NEAR(fast.lj, brute.lj, 1e-9 * scale);
  EXPECT_NEAR(fast.elec, brute.elec, 1e-9 * scale);
}

INSTANTIATE_TEST_SUITE_P(Poses, CellListPoseSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace hcmd::docking
