#include "util/duration.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hcmd::util {
namespace {

TEST(Ydhms, PaperPhase1Estimate) {
  // 1,488 years 237 days 19:45:54 — the paper's total for formula (1).
  const double seconds = parse_ydhms("1488:237:19:45:54");
  EXPECT_EQ(format_ydhms(seconds), "1488:237:19:45:54");
  const Ydhms y = to_ydhms(seconds);
  EXPECT_EQ(y.years, 1488u);
  EXPECT_EQ(y.days, 237u);
  EXPECT_EQ(y.hours, 19u);
  EXPECT_EQ(y.minutes, 45u);
  EXPECT_EQ(y.seconds, 54u);
}

TEST(Ydhms, PaperConsumedTotal) {
  // 8,082 years 275 days 17:15:44 — total CPU consumed by the project.
  const double seconds = parse_ydhms("8082:275:17:15:44");
  EXPECT_EQ(format_ydhms(seconds), "8082:275:17:15:44");
}

TEST(Ydhms, Zero) {
  EXPECT_EQ(format_ydhms(0.0), "0:000:00:00:00");
}

TEST(Ydhms, RoundTripSweep) {
  for (double s : {1.0, 59.0, 60.0, 3599.0, 3600.0, 86399.0, 86400.0,
                   31535999.0, 31536000.0, 1e9}) {
    EXPECT_DOUBLE_EQ(parse_ydhms(format_ydhms(s)), s) << s;
  }
}

TEST(Ydhms, RejectsNegative) {
  EXPECT_THROW(to_ydhms(-1.0), std::logic_error);
}

TEST(ParseYdhms, RejectsMalformed) {
  EXPECT_THROW(parse_ydhms("1:2:3"), hcmd::ParseError);
  EXPECT_THROW(parse_ydhms("a:b:c:d:e"), hcmd::ParseError);
  EXPECT_THROW(parse_ydhms(""), hcmd::ParseError);
}

TEST(FormatCompact, PicksUnits) {
  EXPECT_EQ(format_compact(30.0), "30.0s");
  EXPECT_EQ(format_compact(90.0), "1m 30s");
  EXPECT_EQ(format_compact(3.0 * 3600 + 18 * 60 + 47), "3h 18m 47s");
  EXPECT_EQ(format_compact(2.5 * kSecondsPerDay), "2.5 days");
  EXPECT_EQ(format_compact(26.0 * kSecondsPerWeek), "26.0 weeks");
  EXPECT_EQ(format_compact(2.0 * kSecondsPerYear), "2.0 years");
}

TEST(WithCommas, Formats) {
  EXPECT_EQ(with_commas(std::uint64_t{0}), "0");
  EXPECT_EQ(with_commas(std::uint64_t{999}), "999");
  EXPECT_EQ(with_commas(std::uint64_t{1000}), "1,000");
  EXPECT_EQ(with_commas(std::uint64_t{49481544}), "49,481,544");
  EXPECT_EQ(with_commas(std::uint64_t{5418010}), "5,418,010");
  EXPECT_EQ(with_commas(std::int64_t{-1234567}), "-1,234,567");
}

TEST(Constants, PaperYearConvention) {
  // y:d:h:m:s implies 365-day years.
  EXPECT_DOUBLE_EQ(kSecondsPerYear, 365.0 * 86400.0);
  EXPECT_DOUBLE_EQ(kSecondsPerWeek, 7.0 * 86400.0);
}

}  // namespace
}  // namespace hcmd::util
