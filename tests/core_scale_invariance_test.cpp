// Scale invariance of the campaign model (satellite of the throughput PR):
// running the same 26-week campaign at scale 0.01 and 0.02 must agree on
// every *intensive* headline quantity, while *extensive* quantities double.
//
// Tolerances (all relative), calibrated against measured runs with ~4x
// headroom over the observed deviation:
//  * per-device VFTP averages      — 2%   (observed 0.2–0.5%: the fleet is
//    a fresh sample from the same device-speed distribution, so averages
//    jitter with 1/sqrt(N));
//  * redundancy factor             — 1%   (observed ~0.2%: quorum policy is
//    per-workunit, independent of fleet size);
//  * useful-result share           — 1%   (observed ~0.2%);
//  * completion weeks              — 5%   (observed ~0.5%: the tail is set
//    by straggler order statistics, the least self-averaging quantity);
//  * devices simulated / results   — x2 within 10% (population process is
//    Poisson-like in the scale factor).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/campaign.hpp"

namespace hcmd::core {
namespace {

CampaignReport run_at(double scale) {
  CampaignConfig config;
  config.scale = scale;
  return run_campaign(config);
}

void expect_rel_near(double a, double b, double rel_tol, const char* what) {
  EXPECT_NEAR(a, b, rel_tol * std::max(std::abs(a), std::abs(b))) << what;
}

TEST(CampaignScaleInvariance, IntensiveQuantitiesMatchAcrossScales) {
  const CampaignReport r1 = run_at(0.01);
  const CampaignReport r2 = run_at(0.02);

  // Rescaled weekly VFTP is intensive: independent of how many devices the
  // scale factor admits. Compare means over the *common* week window — the
  // report's whole-campaign averages divide by each run's own completion
  // length, so the straggler tail (an order statistic, checked separately
  // at 5% below) would otherwise couple into the denominator.
  const std::size_t common =
      std::min(r1.hcmd_vftp_weekly.size(), r2.hcmd_vftp_weekly.size());
  const auto mean_over = [](const std::vector<double>& v, std::size_t first,
                            std::size_t last) {
    double sum = 0.0;
    for (std::size_t i = first; i < last; ++i) sum += v[i];
    return sum / static_cast<double>(last - first);
  };
  expect_rel_near(mean_over(r1.wcg_vftp_weekly, 0, common),
                  mean_over(r2.wcg_vftp_weekly, 0, common), 0.02,
                  "whole-grid WCG VFTP");
  expect_rel_near(mean_over(r1.hcmd_vftp_weekly, 0, common),
                  mean_over(r2.hcmd_vftp_weekly, 0, common), 0.02,
                  "whole-campaign HCMD VFTP");
  const auto fp_week = static_cast<std::size_t>(
      std::ceil(std::max(r1.full_power_start_week,
                         r2.full_power_start_week)));
  ASSERT_LT(fp_week, common);
  expect_rel_near(mean_over(r1.hcmd_vftp_weekly, fp_week, common),
                  mean_over(r2.hcmd_vftp_weekly, fp_week, common), 0.02,
                  "full-power HCMD VFTP");

  // Redundancy factor and useful share depend on the validation policy and
  // volunteer behaviour distributions, not on the fleet size.
  expect_rel_near(r1.counters.redundancy_factor(),
                  r2.counters.redundancy_factor(), 0.01, "redundancy factor");
  expect_rel_near(r1.counters.useful_fraction(),
                  r2.counters.useful_fraction(), 0.01, "useful share");

  // The campaign length is bounded below by the 26-week share schedule and
  // above by the straggler tail.
  expect_rel_near(r1.completion_weeks, r2.completion_weeks, 0.05,
                  "completion weeks");

  // Extensive quantities double with the scale factor.
  const double device_ratio = static_cast<double>(r2.devices_simulated) /
                              static_cast<double>(r1.devices_simulated);
  EXPECT_NEAR(device_ratio, 2.0, 0.2);
  const double received_ratio =
      static_cast<double>(r2.counters.results_received) /
      static_cast<double>(r1.counters.results_received);
  EXPECT_NEAR(received_ratio, 2.0, 0.2);

  // Both campaigns actually finished the catalogue.
  EXPECT_EQ(r1.counters.workunits_completed, r1.counters.results_valid);
  EXPECT_EQ(r2.counters.workunits_completed, r2.counters.results_valid);
}

}  // namespace
}  // namespace hcmd::core
