#include "dedicated/calibration.hpp"
#include "dedicated/grid.hpp"

#include <gtest/gtest.h>

#include "util/duration.hpp"
#include "util/error.hpp"

namespace hcmd::dedicated {
namespace {

TEST(Grid, Grid5000SliceHas640Processors) {
  std::uint32_t total = 0;
  for (const auto& c : grid5000_calibration_slice()) total += c.processors;
  EXPECT_EQ(total, 640u);  // "640 processors were used for this experiment"
}

TEST(Batch, SingleProcessorRunsSequentially) {
  const std::vector<Cluster> grid{{"one", 1, 1.0}};
  std::vector<double> jobs{10.0, 20.0, 30.0};
  const BatchResult r = run_batch(jobs, grid);
  EXPECT_DOUBLE_EQ(r.makespan, 60.0);
  EXPECT_DOUBLE_EQ(r.cpu_seconds, 60.0);
  EXPECT_DOUBLE_EQ(r.utilization, 1.0);
  EXPECT_EQ(r.completion_times, (std::vector<double>{10.0, 30.0, 60.0}));
}

TEST(Batch, PerfectlyParallelJobs) {
  const std::vector<Cluster> grid{{"four", 4, 1.0}};
  std::vector<double> jobs{10.0, 10.0, 10.0, 10.0};
  const BatchResult r = run_batch(jobs, grid);
  EXPECT_DOUBLE_EQ(r.makespan, 10.0);
  EXPECT_DOUBLE_EQ(r.utilization, 1.0);
}

TEST(Batch, GreedyAssignsToEarliestFree) {
  const std::vector<Cluster> grid{{"two", 2, 1.0}};
  std::vector<double> jobs{10.0, 2.0, 2.0, 2.0};
  const BatchResult r = run_batch(jobs, grid);
  // P0 takes the 10; P1 takes 2+2+2 = 6. Makespan 10.
  EXPECT_DOUBLE_EQ(r.makespan, 10.0);
}

TEST(Batch, LptImprovesImbalancedMakespan) {
  const std::vector<Cluster> grid{{"two", 2, 1.0}};
  // FIFO: P0 = 1+8 = 9 or 1, 8, 7 ... FIFO gives {1,7}, {8} -> makespan 8;
  // with a bad order the makespan exceeds LPT's.
  std::vector<double> jobs{1.0, 1.0, 8.0, 7.0};
  const double fifo = run_batch(jobs, grid, ListPolicy::kFifo).makespan;
  const double lpt =
      run_batch(jobs, grid, ListPolicy::kLongestProcessingTime).makespan;
  EXPECT_LE(lpt, fifo);
  EXPECT_DOUBLE_EQ(lpt, 9.0);
}

TEST(Batch, FasterClusterFinishesSooner) {
  const std::vector<Cluster> slow{{"slow", 1, 0.5}};
  std::vector<double> jobs{10.0};
  EXPECT_DOUBLE_EQ(run_batch(jobs, slow).makespan, 20.0);
}

TEST(Batch, RejectsInvalidInput) {
  EXPECT_THROW(run_batch(std::vector<double>{1.0}, {}), hcmd::ConfigError);
  EXPECT_THROW(run_batch(std::vector<double>{1.0}, {{"bad", 0, 1.0}}),
               hcmd::ConfigError);
  EXPECT_THROW(run_batch(std::vector<double>{-1.0}, {{"ok", 1, 1.0}}),
               hcmd::ConfigError);
}

TEST(Batch, EmptyJobListIsFine) {
  const BatchResult r = run_batch(std::vector<double>{}, {{"ok", 4, 1.0}});
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
  EXPECT_DOUBLE_EQ(r.cpu_seconds, 0.0);
}

TEST(DedicatedEquivalent, Table2Arithmetic) {
  // Table 2's right column: reference CPU divided by the period.
  const double period = 26.0 * util::kSecondsPerWeek;
  const double cpu = 3'029.0 * period;
  EXPECT_NEAR(dedicated_equivalent_processors(cpu, period), 3'029.0, 1e-9);
}

TEST(Calibration, MatchesAnalyticMatrix) {
  proteins::BenchmarkSpec spec;
  spec.count = 10;
  spec.target_total_nsep = 0;
  spec.outlier_nsep_target = 0;
  const auto bench = proteins::generate_benchmark(spec);
  const auto model = timing::CostModel::calibrated(bench, 500.0);
  const auto outcome =
      run_calibration(bench, model, grid5000_calibration_slice());
  const auto direct = timing::MctMatrix::from_model(bench, model);
  EXPECT_EQ(outcome.jobs, 100.0);
  for (std::size_t i = 0; i < 10; ++i)
    for (std::size_t j = 0; j < 10; ++j)
      EXPECT_DOUBLE_EQ(outcome.matrix.at(i, j), direct.at(i, j));
}

TEST(Calibration, PaperScaleCampaignFitsInADayOn640Processors) {
  // Section 4.1: the 168^2 evaluation took 640 processors for about one
  // day, consuming ~10^2 days of CPU.
  const auto bench = proteins::generate_benchmark({});
  const auto model = timing::CostModel::calibrated(bench);
  const auto outcome =
      run_calibration(bench, model, grid5000_calibration_slice(),
                      ListPolicy::kLongestProcessingTime);
  EXPECT_EQ(outcome.jobs, 28'224.0);
  EXPECT_LT(outcome.batch.makespan, 2.0 * util::kSecondsPerDay);
  EXPECT_GT(outcome.batch.cpu_seconds, 60.0 * util::kSecondsPerDay);
  EXPECT_GT(outcome.batch.utilization, 0.3);
}

}  // namespace
}  // namespace hcmd::dedicated
