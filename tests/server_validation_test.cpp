// Silent errors, quorum mismatch detection and adaptive replication.
#include <gtest/gtest.h>

#include "server/server.hpp"

namespace hcmd::server {
namespace {

std::vector<packaging::Workunit> make_catalog(std::size_t n) {
  std::vector<packaging::Workunit> catalog;
  for (std::size_t i = 0; i < n; ++i) {
    packaging::Workunit wu;
    wu.id = i;
    wu.receptor = 0;
    wu.ligand = 0;
    wu.isep_begin = 0;
    wu.isep_end = 10;
    wu.reference_seconds = 3600.0;
    catalog.push_back(wu);
  }
  return catalog;
}

ResultReport clean() {
  ResultReport r;
  r.reported_runtime = 100.0;
  r.reference_seconds = 3600.0;
  return r;
}

ResultReport corrupt() {
  ResultReport r = clean();
  r.silent_error = true;
  return r;
}

ServerConfig quorum_config() {
  ServerConfig cfg;
  cfg.validation.quorum2_until = 1e12;
  cfg.endgame_max_outstanding = 0;
  return cfg;
}

ServerConfig range_only_config() {
  ServerConfig cfg;
  cfg.validation.quorum2_until = 0.0;
  cfg.validation.spot_check_fraction = 0.0;
  cfg.endgame_max_outstanding = 0;
  return cfg;
}

TEST(Validation, SilentErrorPassesRangeCheckAlone) {
  ProjectServer server(make_catalog(1), range_only_config());
  const auto a = server.request_work(1, 0.0);
  EXPECT_EQ(server.report_result(a->result_id, 10.0, corrupt()),
            ResultState::kValid);
  EXPECT_TRUE(server.complete());
  // The oracle sees the corruption; the server's validation did not.
  EXPECT_EQ(server.counters().corrupt_assimilated, 1u);
}

TEST(Validation, QuorumCatchesSingleCorruptMember) {
  ProjectServer server(make_catalog(1), quorum_config());
  const auto a = server.request_work(1, 0.0);
  const auto b = server.request_work(2, 0.0);
  EXPECT_EQ(server.report_result(a->result_id, 10.0, corrupt()),
            ResultState::kPendingValidation);
  // Comparison fails: both discarded.
  EXPECT_EQ(server.report_result(b->result_id, 20.0, clean()),
            ResultState::kInvalid);
  EXPECT_EQ(server.result(a->result_id).state, ResultState::kInvalid);
  EXPECT_EQ(server.counters().quorum_mismatches, 1u);
  EXPECT_EQ(server.counters().results_invalid, 2u);
  EXPECT_FALSE(server.complete());

  // The two re-issues rebuild the quorum and complete cleanly.
  const auto c = server.request_work(3, 30.0);
  const auto d = server.request_work(4, 30.0);
  ASSERT_TRUE(c.has_value());
  ASSERT_TRUE(d.has_value());
  server.report_result(c->result_id, 40.0, clean());
  server.report_result(d->result_id, 50.0, clean());
  EXPECT_TRUE(server.complete());
  EXPECT_EQ(server.counters().corrupt_assimilated, 0u);
}

TEST(Validation, MatchingCorruptPairSlipsThrough) {
  // Both quorum members corrupt "the same way": undetectable — the
  // residual risk of redundant computing.
  ProjectServer server(make_catalog(1), quorum_config());
  const auto a = server.request_work(1, 0.0);
  const auto b = server.request_work(2, 0.0);
  server.report_result(a->result_id, 10.0, corrupt());
  EXPECT_EQ(server.report_result(b->result_id, 20.0, corrupt()),
            ResultState::kValid);
  EXPECT_TRUE(server.complete());
  EXPECT_EQ(server.counters().corrupt_assimilated, 1u);
  EXPECT_EQ(server.counters().quorum_mismatches, 0u);
}

TEST(Validation, LateSpotCheckDetectsAfterTheFact) {
  ServerConfig cfg = range_only_config();
  cfg.validation.spot_check_fraction = 1.0;
  ProjectServer server(make_catalog(1), cfg);
  const auto a = server.request_work(1, 0.0);
  const auto b = server.request_work(2, 0.0);  // spot-check copy
  server.report_result(a->result_id, 10.0, corrupt());  // assimilated
  EXPECT_EQ(server.counters().corrupt_assimilated, 1u);
  // The clean spot-check copy arrives and disagrees.
  EXPECT_EQ(server.report_result(b->result_id, 20.0, clean()),
            ResultState::kRedundant);
  EXPECT_EQ(server.counters().late_mismatches, 1u);
}

TEST(Validation, AdaptiveDistrustsNewDevices) {
  ServerConfig cfg = range_only_config();
  cfg.validation.adaptive = true;
  cfg.validation.adaptive_min_samples = 2;
  ProjectServer server(make_catalog(8), cfg);
  // Device 1 is unknown: its first workunit is double-issued with quorum 2.
  const auto a = server.request_work(1, 0.0);
  const auto extra = server.request_work(2, 0.0);
  ASSERT_TRUE(extra.has_value());
  EXPECT_EQ(extra->workunit.id, a->workunit.id);
  server.report_result(a->result_id, 10.0, clean());
  server.report_result(extra->result_id, 20.0, clean());
  EXPECT_EQ(server.counters().workunits_completed, 1u);
}

TEST(Validation, AdaptiveTrustsProvenDevices) {
  ServerConfig cfg = range_only_config();
  cfg.validation.adaptive = true;
  cfg.validation.adaptive_min_samples = 2;
  ProjectServer server(make_catalog(8), cfg);
  // Build device 1's history: two clean quorum rounds with device 2.
  for (int round = 0; round < 2; ++round) {
    const auto a = server.request_work(1, 0.0);
    const auto b = server.request_work(2, 0.0);
    server.report_result(a->result_id, 10.0, clean());
    server.report_result(b->result_id, 20.0, clean());
  }
  // Device 1 is now trusted: its next workunit is single-issued.
  const auto solo = server.request_work(1, 100.0);
  ASSERT_TRUE(solo.has_value());
  EXPECT_EQ(server.report_result(solo->result_id, 110.0, clean()),
            ResultState::kValid);  // immediate assimilation, quorum 1
}

TEST(Validation, AdaptiveKeepsDistrustingFlakyDevices) {
  ServerConfig cfg = range_only_config();
  cfg.validation.adaptive = true;
  cfg.validation.adaptive_min_samples = 2;
  cfg.validation.adaptive_max_bad_fraction = 0.05;
  ProjectServer server(make_catalog(16), cfg);
  // Device 1 returns a computation error, poisoning its history.
  {
    const auto a = server.request_work(1, 0.0);
    const auto b = server.request_work(2, 0.0);
    ResultReport bad = clean();
    bad.computation_error = true;
    server.report_result(a->result_id, 10.0, bad);
    server.report_result(b->result_id, 20.0, clean());
    // The re-issued copy completes the quorum with another device.
    const auto c = server.request_work(3, 30.0);
    server.report_result(c->result_id, 40.0, clean());
  }
  // More history, all clean, but the bad fraction stays above 5 %.
  for (int round = 0; round < 3; ++round) {
    const auto a = server.request_work(1, 100.0);
    const auto b = server.request_work(4, 100.0);
    server.report_result(a->result_id, 110.0, clean());
    server.report_result(b->result_id, 120.0, clean());
  }
  // 1 bad of 4 received = 25 % > 5 %: still distrusted -> double issue.
  const auto next = server.request_work(1, 200.0);
  const auto extra = server.request_work(5, 200.0);
  ASSERT_TRUE(extra.has_value());
  EXPECT_EQ(extra->workunit.id, next->workunit.id);
}

}  // namespace
}  // namespace hcmd::server
