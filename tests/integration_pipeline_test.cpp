// Integration: the full scientific pipeline on a miniature problem —
// generate proteins, run the actual docking kernel over packaged slices,
// produce result files, verify them with the paper's three checks, and
// merge them into per-couple files.
#include <gtest/gtest.h>

#include "docking/maxdo.hpp"
#include "packaging/packager.hpp"
#include "proteins/generator.hpp"
#include "results/result_file.hpp"
#include "results/verification.hpp"
#include "timing/mct_matrix.hpp"

namespace hcmd {
namespace {

struct MiniWorld {
  proteins::Benchmark bench;
  docking::MaxDoParams maxdo;

  MiniWorld() {
    proteins::BenchmarkSpec spec;
    spec.count = 3;
    spec.median_atoms = 25;
    spec.min_atoms = 15;
    spec.max_atoms = 40;
    spec.target_total_nsep = 0;
    spec.outlier_nsep_target = 0;
    bench = proteins::generate_benchmark(spec);
    maxdo.positions.spacing = 14.0;  // few positions per receptor
    maxdo.minimizer.max_iterations = 3;
    maxdo.gamma_steps = 2;
    // Recompute the Nsep table for the coarse spacing used here.
    bench.position_params = maxdo.positions;
    for (std::size_t i = 0; i < bench.proteins.size(); ++i)
      bench.nsep[i] =
          proteins::nsep_for(bench.proteins[i], maxdo.positions);
  }
};

TEST(Pipeline, DockSliceVerifyMergeOneReceptor) {
  MiniWorld world;
  const std::uint32_t receptor = 0;
  const std::uint32_t nsep = world.bench.nsep[receptor];
  ASSERT_GE(nsep, 2u);

  // Slice the receptor's work per ligand into two workunits each, run the
  // real docking kernel on every slice, and collect result files.
  std::vector<results::ResultFile> delivery;
  std::vector<std::vector<results::ResultFile>> per_ligand(
      world.bench.proteins.size());
  for (std::uint32_t ligand = 0; ligand < world.bench.proteins.size();
       ++ligand) {
    const std::uint32_t half = nsep / 2;
    for (const auto& [begin, end] :
         std::vector<std::pair<std::uint32_t, std::uint32_t>>{
             {0, half}, {half, nsep}}) {
      docking::MaxDoProgram program(world.bench.proteins[receptor],
                                    world.bench.proteins[ligand],
                                    world.maxdo);
      docking::MaxDoTask task;
      task.isep_begin = begin;
      task.isep_end = end;
      docking::MaxDoCheckpoint cp;
      cp.next_isep = begin;
      ASSERT_EQ(program.run(task, cp), docking::RunStatus::kCompleted);
      per_ligand[ligand].push_back(results::make_result_file(
          receptor, ligand, begin, end, cp));
    }
    // The per-couple merged file joins the delivery.
    delivery.push_back(
        results::merge_files(per_ligand[ligand], nsep, true));
  }

  // The paper's three checks all pass on an honest delivery.
  const auto report = results::verify_delivery(
      delivery, receptor,
      static_cast<std::uint32_t>(world.bench.proteins.size()));
  EXPECT_TRUE(report.ok) << (report.failures.empty()
                                 ? ""
                                 : report.failures.front().second);

  // Every merged file has Nsep * 21 lines.
  for (const auto& f : delivery)
    EXPECT_EQ(f.records.size(), f.expected_lines());
}

TEST(Pipeline, CorruptedDeliveryIsCaught) {
  MiniWorld world;
  const std::uint32_t receptor = 1;
  const std::uint32_t nsep = world.bench.nsep[receptor];
  std::vector<results::ResultFile> delivery;
  for (std::uint32_t ligand = 0; ligand < world.bench.proteins.size();
       ++ligand) {
    docking::MaxDoProgram program(world.bench.proteins[receptor],
                                  world.bench.proteins[ligand], world.maxdo);
    docking::MaxDoTask task;
    task.isep_end = nsep;
    docking::MaxDoCheckpoint cp;
    program.run(task, cp);
    delivery.push_back(
        results::make_result_file(receptor, ligand, 0, nsep, cp));
  }
  // Corrupt one energy value like a bad device would.
  delivery[1].records[0].elj = 3e7;
  EXPECT_FALSE(
      results::verify_delivery(delivery, receptor,
                               static_cast<std::uint32_t>(
                                   world.bench.proteins.size()))
          .ok);
}

TEST(Pipeline, CheckpointInterruptionDoesNotChangeScience) {
  // A workunit computed with an interruption + resume produces byte-equal
  // results to an uninterrupted run (checkpoint correctness end to end).
  MiniWorld world;
  const auto& receptor = world.bench.proteins[0];
  const auto& ligand = world.bench.proteins[2];
  docking::MaxDoTask task;
  task.isep_end = std::min<std::uint32_t>(world.bench.nsep[0], 4);

  docking::MaxDoCheckpoint smooth;
  docking::MaxDoProgram(receptor, ligand, world.maxdo).run(task, smooth);

  docking::MaxDoCheckpoint interrupted;
  docking::MaxDoProgram program(receptor, ligand, world.maxdo);
  int calls = 0;
  program.run(task, interrupted, [&calls] { return ++calls == 1; });
  program.run(task, interrupted);

  const results::ResultFile a =
      results::make_result_file(0, 2, 0, task.isep_end, smooth);
  const results::ResultFile b =
      results::make_result_file(0, 2, 0, task.isep_end, interrupted);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].elj, b.records[i].elj);
    EXPECT_EQ(a.records[i].eelec, b.records[i].eelec);
    EXPECT_EQ(a.records[i].pose.x, b.records[i].pose.x);
  }
}

TEST(Pipeline, PackagingDrivesTaskSlicing) {
  // Workunits from the packager translate 1:1 into MaxDo tasks whose
  // position ranges tile the receptor's Nsep.
  MiniWorld world;
  const auto model = timing::CostModel::calibrated(world.bench, 200.0);
  const auto mct = timing::MctMatrix::from_model(world.bench, model);
  packaging::PackagingConfig cfg;
  cfg.target_hours = 0.05;  // force several workunits per couple
  std::vector<std::uint64_t> covered(world.bench.proteins.size(), 0);
  packaging::for_each_workunit(
      world.bench, mct, cfg, [&](const packaging::Workunit& wu) {
        docking::MaxDoTask task;
        task.isep_begin = wu.isep_begin;
        task.isep_end = wu.isep_end;
        EXPECT_LE(task.isep_end, world.bench.nsep[wu.receptor]);
        covered[wu.receptor] += wu.positions();
      });
  for (std::size_t r = 0; r < covered.size(); ++r)
    EXPECT_EQ(covered[r],
              static_cast<std::uint64_t>(world.bench.nsep[r]) *
                  world.bench.proteins.size());
}

}  // namespace
}  // namespace hcmd
