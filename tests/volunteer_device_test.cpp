#include "volunteer/device.hpp"

#include <gtest/gtest.h>

#include "util/duration.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace hcmd::volunteer {
namespace {

TEST(Device, MakeDeviceFillsSpec) {
  util::Rng rng(1);
  const DeviceParams params;
  const DeviceSpec d = make_device(7, 100.0, 2.0, rng, params);
  EXPECT_EQ(d.id, 7u);
  EXPECT_DOUBLE_EQ(d.join_time, 100.0);
  EXPECT_GT(d.speed_factor, 0.0);
  EXPECT_GT(d.lifetime_seconds, 0.0);
  EXPECT_GE(d.contention, 0.05);
  EXPECT_LE(d.contention, 1.0);
  EXPECT_TRUE(d.throttle == params.throttle_default || d.throttle == 1.0);
}

TEST(Device, EffectiveSpeedIsProductOfFactors) {
  DeviceSpec d;
  d.speed_factor = 0.8;
  d.throttle = 0.6;
  d.contention = 0.5;
  d.screensaver_overhead = 0.95;
  EXPECT_DOUBLE_EQ(d.effective_speed(), 0.8 * 0.6 * 0.5 * 0.95);
}

TEST(Device, UdAccountingReportsWallClock) {
  // Section 6: "the UD agent measures wall clock time rather than actual
  // process execution time".
  DeviceSpec d;
  d.accounting = AccountingMode::kUdWallClock;
  d.speed_factor = 0.5;
  EXPECT_DOUBLE_EQ(d.reported_runtime(8.0 * 3600.0, 1.0 * 3600.0),
                   8.0 * 3600.0);
}

TEST(Device, BoincAccountingReportsCpuTime) {
  DeviceSpec d;
  d.accounting = AccountingMode::kBoincCpuTime;
  d.speed_factor = 0.5;
  // 1 reference hour on a half-speed device = 2 CPU hours.
  EXPECT_DOUBLE_EQ(d.reported_runtime(8.0 * 3600.0, 1.0 * 3600.0),
                   2.0 * 3600.0);
}

TEST(Device, FleetEffectiveSpeedNearQuarter) {
  // The calibrated defaults must put the fleet's effective speed near 1/4 —
  // the reciprocal of the paper's 3.96x speed-down (before interruption
  // losses, which push the simulated value slightly lower).
  const DeviceParams params;
  const double e = expected_effective_speed(params, 2.1);
  EXPECT_GT(e, 0.22);
  EXPECT_LT(e, 0.33);
}

TEST(Device, SampledEffectiveSpeedMatchesAnalytic) {
  util::Rng rng(3);
  const DeviceParams params;
  util::OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    const DeviceSpec d =
        make_device(static_cast<std::uint32_t>(i), 0.0, 2.1, rng, params);
    stats.add(d.effective_speed());
  }
  EXPECT_NEAR(stats.mean(), expected_effective_speed(params, 2.1),
              0.02 * stats.mean());
}

TEST(Device, NewerDevicesFaster) {
  const DeviceParams params;
  EXPECT_GT(expected_effective_speed(params, 3.0),
            expected_effective_speed(params, 1.0));
}

TEST(Device, AttachedFractionMixesClasses) {
  DeviceParams params;
  params.always_on_fraction = 0.0;
  const double interactive = expected_attached_fraction(params);
  EXPECT_NEAR(interactive,
              params.on_mean_hours /
                  (params.on_mean_hours + params.off_mean_hours),
              1e-12);
  params.always_on_fraction = 1.0;
  EXPECT_GT(expected_attached_fraction(params), 0.95);
}

TEST(Device, SampledAttachedFractionMatchesAnalytic) {
  util::Rng rng(5);
  const DeviceParams params;
  util::OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    const DeviceSpec d =
        make_device(static_cast<std::uint32_t>(i), 0.0, 2.0, rng, params);
    stats.add(d.attached_fraction());
  }
  EXPECT_NEAR(stats.mean(), expected_attached_fraction(params), 0.01);
}

TEST(Device, UnthrottledFractionObserved) {
  util::Rng rng(7);
  const DeviceParams params;
  int unthrottled = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const DeviceSpec d =
        make_device(static_cast<std::uint32_t>(i), 0.0, 2.0, rng, params);
    if (d.throttle == 1.0) ++unthrottled;
  }
  EXPECT_NEAR(static_cast<double>(unthrottled) / n,
              params.unthrottled_fraction, 0.01);
}

TEST(Device, LifetimeMeanMatchesParameter) {
  util::Rng rng(9);
  const DeviceParams params;
  util::OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    const DeviceSpec d =
        make_device(static_cast<std::uint32_t>(i), 0.0, 2.0, rng, params);
    stats.add(d.lifetime_seconds);
  }
  EXPECT_NEAR(stats.mean(),
              params.lifetime_mean_days * util::kSecondsPerDay,
              0.03 * stats.mean());
}

TEST(Device, RejectsInvalidParams) {
  util::Rng rng(11);
  DeviceParams p;
  p.throttle_default = 1.5;
  EXPECT_THROW(make_device(0, 0.0, 1.0, rng, p), hcmd::ConfigError);
  p = {};
  p.contention_mean = 0.0;
  EXPECT_THROW(make_device(0, 0.0, 1.0, rng, p), hcmd::ConfigError);
  p = {};
  p.lifetime_mean_days = -1.0;
  EXPECT_THROW(make_device(0, 0.0, 1.0, rng, p), hcmd::ConfigError);
  p = {};
  p.abandon_rate = 2.0;
  EXPECT_THROW(make_device(0, 0.0, 1.0, rng, p), hcmd::ConfigError);
}

}  // namespace
}  // namespace hcmd::volunteer
