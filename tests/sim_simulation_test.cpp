#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hcmd::sim {
namespace {

TEST(Simulation, StartsAtZero) {
  Simulation s;
  EXPECT_EQ(s.now(), 0.0);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, SimultaneousEventsFifo) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    s.schedule_at(5.0, [&order, i] { order.push_back(i); });
  s.run_until();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, ClockAdvancesToEventTime) {
  Simulation s;
  double seen = -1.0;
  s.schedule_at(7.5, [&] { seen = s.now(); });
  s.run_until();
  EXPECT_EQ(seen, 7.5);
  EXPECT_EQ(s.now(), 7.5);
}

TEST(Simulation, RunUntilBoundIsInclusive) {
  Simulation s;
  int fired = 0;
  s.schedule_at(10.0, [&] { ++fired; });
  s.schedule_at(10.0001, [&] { ++fired; });
  s.run_until(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 10.0);  // clock advanced to the bound
  s.run_until(11.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, ScheduleInIsRelative) {
  Simulation s;
  double seen = -1.0;
  s.schedule_at(5.0, [&] {
    s.schedule_in(2.5, [&] { seen = s.now(); });
  });
  s.run_until();
  EXPECT_EQ(seen, 7.5);
}

TEST(Simulation, RejectsPastEvents) {
  Simulation s;
  s.schedule_at(5.0, [] {});
  s.run_until();
  EXPECT_THROW(s.schedule_at(1.0, [] {}), std::logic_error);
  EXPECT_THROW(s.schedule_in(-1.0, [] {}), std::logic_error);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation s;
  bool fired = false;
  EventHandle h = s.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());  // second cancel is a no-op
  s.run_until();
  EXPECT_FALSE(fired);
}

TEST(Simulation, HandleNotPendingAfterFire) {
  Simulation s;
  EventHandle h = s.schedule_at(1.0, [] {});
  s.run_until();
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());
}

TEST(Simulation, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());
}

TEST(Simulation, StepRunsExactlyOne) {
  Simulation s;
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(s.step());
}

TEST(Simulation, PeriodicFiresRepeatedly) {
  Simulation s;
  std::vector<double> times;
  s.schedule_periodic(1.0, 2.0, [&](SimTime t) {
    times.push_back(t);
    return times.size() < 4;
  });
  s.run_until(100.0);
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0, 5.0, 7.0}));
}

TEST(Simulation, PeriodicCancelStopsSeries) {
  Simulation s;
  int count = 0;
  EventHandle h = s.schedule_periodic(0.0, 1.0, [&](SimTime) {
    ++count;
    return true;
  });
  s.run_until(4.5);
  EXPECT_EQ(count, 5);  // t = 0,1,2,3,4
  EXPECT_TRUE(h.cancel());
  s.run_until(10.0);
  EXPECT_EQ(count, 5);
}

TEST(Simulation, PeriodicInterleavesWithOneShots) {
  Simulation s;
  std::vector<std::pair<char, double>> log;
  s.schedule_periodic(0.5, 1.0, [&](SimTime t) {
    log.emplace_back('p', t);
    return t < 3.0;
  });
  s.schedule_at(1.0, [&] { log.emplace_back('o', s.now()); });
  s.run_until();
  ASSERT_EQ(log.size(), 5u);
  EXPECT_EQ(log[0], std::make_pair('p', 0.5));
  EXPECT_EQ(log[1], std::make_pair('o', 1.0));
  EXPECT_EQ(log[2], std::make_pair('p', 1.5));
}

TEST(Simulation, ProcessedEventCount) {
  Simulation s;
  for (int i = 0; i < 17; ++i) s.schedule_at(i, [] {});
  EXPECT_EQ(s.run_until(), 17u);
  EXPECT_EQ(s.processed_events(), 17u);
}

TEST(Simulation, CancelledEventsNotCounted) {
  Simulation s;
  EventHandle h = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  h.cancel();
  EXPECT_EQ(s.run_until(), 1u);
}

TEST(Simulation, EventsScheduledDuringRunExecute) {
  Simulation s;
  std::vector<double> times;
  s.schedule_at(1.0, [&] {
    times.push_back(s.now());
    s.schedule_in(1.0, [&] { times.push_back(s.now()); });
  });
  s.run_until();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(Simulation, DeterministicReplay) {
  auto run = [] {
    Simulation s;
    std::vector<double> trace;
    for (int i = 0; i < 100; ++i) {
      s.schedule_at(static_cast<double>((i * 37) % 50),
                    [&trace, &s] { trace.push_back(s.now()); });
    }
    s.run_until();
    return trace;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace hcmd::sim
