// Integration: the full Phase I campaign simulation at a coarse scale.
// These are the headline reproduction checks — each asserts a *shape*
// property from the paper's evaluation with generous tolerances (the bench
// binaries report the precise values).
#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "util/duration.hpp"

namespace hcmd::core {
namespace {

/// One shared campaign run (the default config at a coarse 1/100 scale for
/// speed); recomputing it per test would dominate the suite's runtime.
const CampaignReport& coarse_report() {
  static const CampaignReport report = [] {
    CampaignConfig config;
    config.scale = 0.01;
    return run_campaign(config);
  }();
  return report;
}

TEST(Campaign, CompletesNearTwentySixWeeks) {
  const auto& r = coarse_report();
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.completion_weeks, 20.0);
  EXPECT_LT(r.completion_weeks, 32.0);
}

TEST(Campaign, RedundancyFactorNearPaper) {
  // Paper: 1.37 (5,418,010 disclosed / 3,936,010 effective).
  const auto& r = coarse_report();
  EXPECT_GT(r.redundancy_factor, 1.2);
  EXPECT_LT(r.redundancy_factor, 1.6);
}

TEST(Campaign, UsefulFractionNear73Percent) {
  const auto& r = coarse_report();
  EXPECT_GT(r.useful_fraction, 0.62);
  EXPECT_LT(r.useful_fraction, 0.85);
  EXPECT_NEAR(r.useful_fraction * r.redundancy_factor, 1.0, 1e-9);
}

TEST(Campaign, SpeeddownsBracketPaperValues) {
  const auto& r = coarse_report();
  // Gross 5.43x, net 3.96x.
  EXPECT_GT(r.speeddown.gross_speeddown(), 4.5);
  EXPECT_LT(r.speeddown.gross_speeddown(), 6.5);
  EXPECT_GT(r.speeddown.net_speeddown(), 3.2);
  EXPECT_LT(r.speeddown.net_speeddown(), 4.8);
  EXPECT_LT(r.speeddown.net_speeddown(), r.speeddown.gross_speeddown());
}

TEST(Campaign, VftpAveragesNearPaper) {
  const auto& r = coarse_report();
  EXPECT_NEAR(r.avg_wcg_vftp_whole, 54'947.0, 0.12 * 54'947.0);
  EXPECT_NEAR(r.avg_hcmd_vftp_whole, 16'450.0, 0.25 * 16'450.0);
  EXPECT_NEAR(r.avg_hcmd_vftp_fullpower, 26'248.0, 0.25 * 26'248.0);
  EXPECT_GT(r.avg_hcmd_vftp_fullpower, r.avg_hcmd_vftp_whole);
}

TEST(Campaign, ThreePhasesVisibleInWeeklySeries) {
  const auto& r = coarse_report();
  ASSERT_GT(r.hcmd_vftp_weekly.size(), 15u);
  // Control period: HCMD gets a sliver of the grid.
  EXPECT_LT(r.hcmd_vftp_weekly[2] / r.wcg_vftp_weekly[2], 0.10);
  // Full power: share near 45 %.
  const std::size_t mid = 14;
  EXPECT_NEAR(r.hcmd_vftp_weekly[mid] / r.wcg_vftp_weekly[mid], 0.45, 0.08);
}

TEST(Campaign, RunTimeDistributionMatchesFigure8) {
  const auto& r = coarse_report();
  // Packaged for ~3-4 h on the reference, observed ~13 h on volunteers.
  EXPECT_GT(r.nominal_wu_mean_seconds, 2.5 * util::kSecondsPerHour);
  EXPECT_LT(r.nominal_wu_mean_seconds, 4.5 * util::kSecondsPerHour);
  EXPECT_GT(r.runtime_summary.mean, 10.0 * util::kSecondsPerHour);
  EXPECT_LT(r.runtime_summary.mean, 19.0 * util::kSecondsPerHour);
}

TEST(Campaign, ProgressionSkewMatchesFigure7) {
  const auto& r = coarse_report();
  ASSERT_EQ(r.snapshots.size(), 4u);
  // Snapshots are chronological and monotone.
  for (std::size_t i = 1; i < r.snapshots.size(); ++i) {
    EXPECT_GE(r.snapshots[i].computation_done_fraction,
              r.snapshots[i - 1].computation_done_fraction);
    EXPECT_GE(r.snapshots[i].proteins_done_fraction,
              r.snapshots[i - 1].proteins_done_fraction);
  }
  // The 05-02 snapshot: most proteins done, computation lagging well
  // behind (paper: 85 % vs 47 %).
  const auto& snap = r.snapshots[2];
  EXPECT_GT(snap.proteins_done_fraction, 0.75);
  EXPECT_LT(snap.computation_done_fraction,
            snap.proteins_done_fraction - 0.15);
  // By 06-11 the project is essentially finished.
  EXPECT_GT(r.snapshots[3].computation_done_fraction, 0.95);
}

TEST(Campaign, WorkunitCountNearPaperProduction) {
  const auto& r = coarse_report();
  // Fig. 4(b)-scale packaging: ~3.6 M workunits.
  EXPECT_NEAR(static_cast<double>(r.full_workunit_count), 3'599'937.0,
              0.08 * 3'599'937.0);
}

TEST(Campaign, RescaledResultCountsNearPaper) {
  const auto& r = coarse_report();
  // Paper: 5,418,010 received / 3,936,010 effective.
  EXPECT_NEAR(r.results_received_rescaled(), 5'418'010.0,
              0.20 * 5'418'010.0);
  EXPECT_NEAR(r.results_useful_rescaled(), 3'936'010.0,
              0.15 * 3'936'010.0);
}

TEST(Campaign, TotalReferenceTimeNear1488Years) {
  const auto& r = coarse_report();
  const double years = r.total_reference_seconds / util::kSecondsPerYear;
  EXPECT_NEAR(years, 1488.65, 0.10 * 1488.65);
}

TEST(Campaign, DeterministicAcrossRuns) {
  CampaignConfig config;
  config.scale = 0.004;  // very coarse: this test runs the DES twice
  config.max_weeks = 40.0;
  const CampaignReport a = run_campaign(config);
  const CampaignReport b = run_campaign(config);
  EXPECT_EQ(a.counters.results_received, b.counters.results_received);
  EXPECT_EQ(a.counters.results_valid, b.counters.results_valid);
  EXPECT_EQ(a.completion_weeks, b.completion_weeks);
  EXPECT_EQ(a.devices_simulated, b.devices_simulated);
}

TEST(Campaign, SeedChangesMicrostateNotShape) {
  CampaignConfig config;
  config.scale = 0.004;
  config.seed = 9999;
  const CampaignReport r = run_campaign(config);
  const CampaignReport& base = coarse_report();
  EXPECT_NE(r.counters.results_received, base.counters.results_received);
  // Shape invariants survive the reseed.
  EXPECT_GT(r.redundancy_factor, 1.15);
  EXPECT_LT(r.redundancy_factor, 1.65);
  EXPECT_TRUE(r.completed);
}

TEST(Campaign, ConfigValidation) {
  CampaignConfig config;
  config.scale = 0.0;
  EXPECT_THROW(run_campaign(config), hcmd::ConfigError);
  config = {};
  config.max_weeks = -1.0;
  EXPECT_THROW(run_campaign(config), hcmd::ConfigError);
  config = {};
  config.snapshots = {{"bad", util::CivilDate{2006, 1, 1}}};
  EXPECT_THROW(run_campaign(config), hcmd::ConfigError);
  config = {};
  config.shards = 0;
  EXPECT_THROW(run_campaign(config), hcmd::ConfigError);
}

TEST(Campaign, RejectsMoreShardsThanDevices) {
  // Only detectable after the population model has run; the engine must
  // not be built (let alone run) for such a config.
  CampaignConfig config;
  config.scale = 0.002;
  config.shards = 100'000;  // a 1/500-scale fleet is ~600 devices
  EXPECT_THROW(run_campaign(config), hcmd::ConfigError);
}

TEST(Campaign, BuildWorkloadExposesPieces) {
  CampaignConfig config;
  const Workload w = build_workload(config);
  EXPECT_EQ(w.benchmark.proteins.size(), 168u);
  EXPECT_NEAR(w.mct->summary().mean, 671.0, 15.0);
  EXPECT_GT(w.mct->total_reference_seconds(w.benchmark), 0.0);
}

}  // namespace
}  // namespace hcmd::core
