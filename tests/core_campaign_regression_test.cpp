// Golden regression for the campaign headline numbers (F6a/F6b/T2 inputs):
// the default-seed coarse campaign must reproduce these values *bit
// exactly*. The constants were captured from the seed engine
// (std::priority_queue + std::function events) before the pooled-arena /
// indexed-heap rewrite, so any drift here means the DES core changed
// dispatch order or timing — a determinism bug, not a tolerance issue.
//
// If an intentional semantic change to the campaign model lands, re-capture
// with a %.17g printf of the fields below and update the constants in the
// same commit.
#include <gtest/gtest.h>

#include "core/campaign.hpp"

namespace hcmd::core {
namespace {

const CampaignReport& golden_report() {
  static const CampaignReport report = [] {
    CampaignConfig config;
    config.scale = 0.01;  // default seed, coarse 1/100 scale
    return run_campaign(config);
  }();
  return report;
}

TEST(CampaignGolden, LifecycleCountersBitExact) {
  const auto& r = golden_report();
  const auto& c = r.counters;
  EXPECT_EQ(r.devices_simulated, 2915u);
  EXPECT_EQ(c.results_sent, 48183u);
  EXPECT_EQ(c.results_received, 47795u);
  EXPECT_EQ(c.results_valid, 34567u);
  EXPECT_EQ(c.results_quorum_extra, 3528u);
  EXPECT_EQ(c.results_invalid, 702u);
  EXPECT_EQ(c.results_redundant, 8998u);
  EXPECT_EQ(c.results_timed_out, 1274u);
  EXPECT_EQ(c.results_pending, 0u);
  EXPECT_EQ(c.quorum_mismatches, 0u);
  EXPECT_EQ(c.late_mismatches, 0u);
  EXPECT_EQ(c.corrupt_assimilated, 0u);
  EXPECT_EQ(c.workunits_completed, 34567u);
}

TEST(CampaignGolden, CompletionAndRuntimeAggregatesBitExact) {
  const auto& r = golden_report();
  // EXPECT_DOUBLE_EQ would allow 4 ulps; the requirement is bit-identity.
  EXPECT_EQ(r.completion_weeks, 26.428571428571427);
  EXPECT_EQ(r.counters.useful_reference_seconds, 449868784.90103674);
  EXPECT_EQ(r.counters.reported_runtime_seconds, 2474099628.8389344);
  EXPECT_EQ(r.runtime_summary.mean, 51764.821191316354);
  EXPECT_EQ(r.runtime_summary.count, 47795u);
}

TEST(CampaignGolden, VftpAndCreditSeriesBitExact) {
  const auto& r = golden_report();
  EXPECT_EQ(r.avg_wcg_vftp_whole, 56202.131663948217);
  EXPECT_EQ(r.avg_hcmd_vftp_whole, 15512.506947934324);
  EXPECT_EQ(r.avg_hcmd_vftp_fullpower, 22790.655920413839);
  EXPECT_EQ(r.total_credit, 81416886.649680674);
  ASSERT_GT(r.hcmd_vftp_weekly.size(), 3u);
  ASSERT_GT(r.results_received_weekly.size(), 3u);
  EXPECT_EQ(r.hcmd_vftp_weekly[3], 1690.7902416248728);
  EXPECT_EQ(r.results_received_weekly[3], 19500.0);
}

}  // namespace
}  // namespace hcmd::core
