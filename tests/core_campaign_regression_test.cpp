// Golden regression for the campaign headline numbers (F6a/F6b/T2 inputs):
// the default-seed coarse campaign must reproduce these values *bit
// exactly*. The constants were re-captured when the sharded epoch-barrier
// engine replaced the synchronous transitioner (server RPCs now resolve at
// hourly barriers and deadlines fire with hourly rather than daily
// resolution — an intentional semantic change), so any drift here means
// the engine changed dispatch order or timing — a determinism bug, not a
// tolerance issue.
//
// If an intentional semantic change to the campaign model lands, re-capture
// with a %.17g printf of the fields below and update the constants in the
// same commit.
#include <gtest/gtest.h>

#include "core/campaign.hpp"

namespace hcmd::core {
namespace {

const CampaignReport& golden_report() {
  static const CampaignReport report = [] {
    CampaignConfig config;
    config.scale = 0.01;  // default seed, coarse 1/100 scale
    return run_campaign(config);
  }();
  return report;
}

TEST(CampaignGolden, LifecycleCountersBitExact) {
  const auto& r = golden_report();
  const auto& c = r.counters;
  EXPECT_EQ(r.devices_simulated, 2915u);
  EXPECT_EQ(c.results_sent, 48237u);
  EXPECT_EQ(c.results_received, 47811u);
  EXPECT_EQ(c.results_valid, 34567u);
  EXPECT_EQ(c.results_quorum_extra, 3530u);
  EXPECT_EQ(c.results_invalid, 734u);
  EXPECT_EQ(c.results_redundant, 8980u);
  EXPECT_EQ(c.results_timed_out, 1274u);
  EXPECT_EQ(c.results_pending, 0u);
  EXPECT_EQ(c.quorum_mismatches, 0u);
  EXPECT_EQ(c.late_mismatches, 0u);
  EXPECT_EQ(c.corrupt_assimilated, 0u);
  EXPECT_EQ(c.workunits_completed, 34567u);
}

TEST(CampaignGolden, CompletionAndRuntimeAggregatesBitExact) {
  const auto& r = golden_report();
  // EXPECT_DOUBLE_EQ would allow 4 ulps; the requirement is bit-identity.
  EXPECT_EQ(r.completion_weeks, 25.428571428571427);
  EXPECT_EQ(r.counters.useful_reference_seconds, 449868784.9010374);
  EXPECT_EQ(r.counters.reported_runtime_seconds, 2465283311.17629);
  EXPECT_EQ(r.runtime_summary.mean, 51563.098683907003);
  EXPECT_EQ(r.runtime_summary.count, 47811u);
}

TEST(CampaignGolden, VftpAndCreditSeriesBitExact) {
  const auto& r = golden_report();
  EXPECT_EQ(r.avg_wcg_vftp_whole, 55869.374238346973);
  EXPECT_EQ(r.avg_hcmd_vftp_whole, 16043.688621537811);
  EXPECT_EQ(r.avg_hcmd_vftp_fullpower, 24197.228945140163);
  EXPECT_EQ(r.total_credit, 80674801.988260508);
  ASSERT_GT(r.hcmd_vftp_weekly.size(), 3u);
  ASSERT_GT(r.results_received_weekly.size(), 3u);
  EXPECT_EQ(r.hcmd_vftp_weekly[3], 1764.2503912872207);
  EXPECT_EQ(r.results_received_weekly[3], 20500.0);
}

}  // namespace
}  // namespace hcmd::core
