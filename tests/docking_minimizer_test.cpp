#include "docking/minimizer.hpp"

#include <gtest/gtest.h>

#include "proteins/generator.hpp"

namespace hcmd::docking {
namespace {

using proteins::Dof6;
using proteins::ReducedProtein;

struct Fixture {
  ReducedProtein receptor = proteins::generate_protein(1, 60, 1.0, 11);
  ReducedProtein ligand = proteins::generate_protein(2, 40, 1.1, 12);
  EnergyParams energy;
  MinimizerParams params;

  Dof6 start() const {
    Dof6 d;
    d.x = receptor.bounding_radius() + ligand.bounding_radius() + 4.0;
    return d;
  }
};

TEST(Minimizer, NeverIncreasesEnergy) {
  Fixture f;
  const double initial =
      interaction_energy(f.receptor, f.ligand, f.start().to_transform(),
                         f.energy)
          .total();
  const MinimizationResult res =
      minimize(f.receptor, f.ligand, f.start(), f.energy, f.params);
  EXPECT_LE(res.energy.total(), initial + 1e-9);
}

TEST(Minimizer, ImprovesFromSeparatedStart) {
  Fixture f;
  const double initial =
      interaction_energy(f.receptor, f.ligand, f.start().to_transform(),
                         f.energy)
          .total();
  const MinimizationResult res =
      minimize(f.receptor, f.ligand, f.start(), f.energy, f.params);
  EXPECT_LT(res.energy.total(), initial);
}

TEST(Minimizer, Deterministic) {
  Fixture f;
  const auto a = minimize(f.receptor, f.ligand, f.start(), f.energy, f.params);
  const auto b = minimize(f.receptor, f.ligand, f.start(), f.energy, f.params);
  EXPECT_EQ(a.energy.total(), b.energy.total());
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.pose.x, b.pose.x);
  EXPECT_EQ(a.pose.gamma, b.pose.gamma);
}

TEST(Minimizer, RespectsIterationBudget) {
  Fixture f;
  f.params.max_iterations = 5;
  const auto res =
      minimize(f.receptor, f.ligand, f.start(), f.energy, f.params);
  EXPECT_LE(res.iterations, 5u);
}

TEST(Minimizer, WorkCounterCountsEvaluations) {
  Fixture f;
  f.params.max_iterations = 3;
  WorkCounter work;
  minimize(f.receptor, f.ligand, f.start(), f.energy, f.params, &work);
  // Per iteration: 12 gradient evals + 1 trial; +1 initial evaluation.
  EXPECT_GE(work.evaluations, 1u + 3u);
  EXPECT_LE(work.evaluations, 1u + 3u * 13u);
  EXPECT_EQ(work.pair_terms, work.evaluations * f.receptor.size() *
                                 f.ligand.size());
}

TEST(Minimizer, WorkScalesWithProteinSizes) {
  Fixture f;
  WorkCounter small_work;
  minimize(f.receptor, f.ligand, f.start(), f.energy, f.params, &small_work);
  const ReducedProtein big = proteins::generate_protein(3, 120, 1.0, 13);
  Dof6 start;
  start.x = f.receptor.bounding_radius() + big.bounding_radius() + 4.0;
  WorkCounter big_work;
  minimize(f.receptor, big, start, f.energy, f.params, &big_work);
  // Pair terms per evaluation scale with n1 * n2.
  EXPECT_EQ(small_work.pair_terms % (60u * 40u), 0u);
  EXPECT_EQ(big_work.pair_terms % (60u * 120u), 0u);
}

TEST(Minimizer, ConvergedFlagOnTightTolerance) {
  Fixture f;
  f.params.energy_tolerance = 1e6;  // any accepted step converges
  const auto res =
      minimize(f.receptor, f.ligand, f.start(), f.energy, f.params);
  EXPECT_TRUE(res.converged);
}

TEST(Minimizer, RejectsBadParams) {
  Fixture f;
  f.params.max_iterations = 0;
  EXPECT_THROW(
      minimize(f.receptor, f.ligand, f.start(), f.energy, f.params),
      std::logic_error);
  f.params = MinimizerParams{};
  f.params.shrink = 1.5;
  EXPECT_THROW(
      minimize(f.receptor, f.ligand, f.start(), f.energy, f.params),
      std::logic_error);
}

class MinimizerStartSweep : public ::testing::TestWithParam<int> {};

TEST_P(MinimizerStartSweep, EnergyNonIncreasingFromAnyStart) {
  Fixture f;
  proteins::OrientationGrid grid;
  const Dof6 orient =
      grid.orientation(static_cast<std::uint32_t>(GetParam()) %
                           proteins::kNumRotationCouples,
                       static_cast<std::uint32_t>(GetParam()) %
                           proteins::kNumGammaSteps);
  Dof6 start = orient;
  start.x = f.receptor.bounding_radius() + 12.0;
  start.y = 2.0 * GetParam();
  const double initial =
      interaction_energy(f.receptor, f.ligand, start.to_transform(), f.energy)
          .total();
  const auto res = minimize(f.receptor, f.ligand, start, f.energy, f.params);
  EXPECT_LE(res.energy.total(), initial + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Starts, MinimizerStartSweep,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace hcmd::docking
