#include "core/replication.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hcmd::core {
namespace {

CampaignConfig tiny_config() {
  CampaignConfig config;
  config.scale = 0.002;
  config.max_weeks = 45.0;
  return config;
}

TEST(Replication, RejectsZeroReplicas) {
  EXPECT_THROW(replicate_campaign(tiny_config(), 0), hcmd::ConfigError);
}

TEST(Replication, RunsRequestedReplicas) {
  const ReplicationResult r = replicate_campaign(tiny_config(), 4, 100, 2);
  EXPECT_EQ(r.replicas, 4u);
  EXPECT_EQ(r.reports.size(), 4u);
  EXPECT_FALSE(r.metrics.empty());
}

TEST(Replication, SeedsProduceDistinctRuns) {
  const ReplicationResult r = replicate_campaign(tiny_config(), 3, 7, 2);
  EXPECT_NE(r.reports[0].counters.results_received,
            r.reports[1].counters.results_received);
}

TEST(Replication, DeterministicAcrossThreadCounts) {
  // The replicas are independent simulations; assembling them on 1 or 4
  // threads must give identical reports.
  const ReplicationResult a = replicate_campaign(tiny_config(), 3, 11, 1);
  const ReplicationResult b = replicate_campaign(tiny_config(), 3, 11, 4);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(a.reports[i].counters.results_received,
              b.reports[i].counters.results_received);
    EXPECT_EQ(a.reports[i].completion_weeks, b.reports[i].completion_weeks);
  }
}

TEST(Replication, ComposesWithShardedRunsDeterministically) {
  // replicas x shards: the replica fan-out divides its worker budget by the
  // per-replica shard parallelism (no oversubscription), and sharding a
  // replica never changes its report — the sharded replicated summary is
  // bit-identical to the sequential one.
  CampaignConfig sharded = tiny_config();
  sharded.shards = 2;
  const ReplicationResult a = replicate_campaign(tiny_config(), 2, 31, 2);
  const ReplicationResult b = replicate_campaign(sharded, 2, 31, 2);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(a.reports[i].counters.results_received,
              b.reports[i].counters.results_received);
    EXPECT_EQ(a.reports[i].counters.results_valid,
              b.reports[i].counters.results_valid);
    EXPECT_EQ(a.reports[i].completion_weeks, b.reports[i].completion_weeks);
    EXPECT_EQ(b.reports[i].shards, 2u);
  }
  for (std::size_t m = 0; m < a.metrics.size(); ++m) {
    EXPECT_EQ(a.metrics[m].mean, b.metrics[m].mean) << a.metrics[m].name;
    EXPECT_EQ(a.metrics[m].stddev, b.metrics[m].stddev) << a.metrics[m].name;
  }
}

TEST(Replication, MetricLookup) {
  const ReplicationResult r = replicate_campaign(tiny_config(), 2, 5, 2);
  EXPECT_NO_THROW(r.metric("redundancy_factor"));
  EXPECT_THROW(r.metric("nonsense"), hcmd::Error);
}

TEST(Replication, SummariesBracketReports) {
  const ReplicationResult r = replicate_campaign(tiny_config(), 4, 21, 2);
  const MetricSummary& m = r.metric("completion_weeks");
  for (const auto& report : r.reports) {
    EXPECT_GE(report.completion_weeks, m.min);
    EXPECT_LE(report.completion_weeks, m.max);
  }
  EXPECT_GE(m.mean, m.min);
  EXPECT_LE(m.mean, m.max);
  EXPECT_GE(m.ci95, 0.0);
}

TEST(Replication, HeadlineMetricsStableAcrossSeeds) {
  // The reproduction's load-bearing ratios are not a single-seed fluke:
  // the across-seed spread is tight.
  const ReplicationResult r = replicate_campaign(tiny_config(), 6, 1, 0);
  const MetricSummary& redundancy = r.metric("redundancy_factor");
  EXPECT_NEAR(redundancy.mean, 1.37, 0.12);
  EXPECT_LT(redundancy.stddev, 0.08);
  const MetricSummary& net = r.metric("net_speeddown");
  EXPECT_NEAR(net.mean, 3.96, 0.5);
  EXPECT_LT(net.stddev / net.mean, 0.06);
}

}  // namespace
}  // namespace hcmd::core
