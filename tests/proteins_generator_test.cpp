#include "proteins/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace hcmd::proteins {
namespace {

// The full 168-protein default set is used by several tests; generate once.
const Benchmark& default_benchmark() {
  static const Benchmark bench = generate_benchmark({});
  return bench;
}

TEST(Generator, ProducesRequestedCount) {
  BenchmarkSpec spec;
  spec.count = 12;
  spec.target_total_nsep = 0;        // skip calibration for small sets
  spec.outlier_nsep_target = 0;
  const Benchmark b = generate_benchmark(spec);
  EXPECT_EQ(b.proteins.size(), 12u);
  EXPECT_EQ(b.nsep.size(), 12u);
}

TEST(Generator, DefaultSetHas168Proteins) {
  EXPECT_EQ(default_benchmark().proteins.size(), 168u);
}

TEST(Generator, Deterministic) {
  const Benchmark a = generate_benchmark({});
  const Benchmark& b = default_benchmark();
  ASSERT_EQ(a.proteins.size(), b.proteins.size());
  for (std::size_t i = 0; i < a.proteins.size(); ++i)
    EXPECT_EQ(a.proteins[i], b.proteins[i]);
  EXPECT_EQ(a.nsep, b.nsep);
  EXPECT_EQ(a.position_params.spacing, b.position_params.spacing);
}

TEST(Generator, DifferentSeedDifferentSet) {
  BenchmarkSpec spec;
  spec.seed = 43;
  const Benchmark b = generate_benchmark(spec);
  EXPECT_FALSE(b.proteins[0] == default_benchmark().proteins[0]);
}

TEST(Generator, CandidateWorkunitIdentity) {
  // Section 4.1: 49,481,544 workunits can be generated = 168 * sum Nsep.
  const Benchmark& b = default_benchmark();
  EXPECT_EQ(b.candidate_workunits(), b.total_nsep() * 168u);
  EXPECT_NEAR(static_cast<double>(b.candidate_workunits()), 49'481'544.0,
              0.04 * 49'481'544.0);
}

TEST(Generator, NsepTableMatchesGeometry) {
  const Benchmark& b = default_benchmark();
  for (std::size_t i = 0; i < b.proteins.size(); i += 23)
    EXPECT_EQ(b.nsep[i], nsep_for(b.proteins[i], b.position_params));
}

TEST(Generator, Figure2Shape) {
  // "most of the proteins have less than 3000 starting positions ... one of
  // them has more than 8000".
  const Benchmark& b = default_benchmark();
  const std::size_t under_3000 = static_cast<std::size_t>(
      std::count_if(b.nsep.begin(), b.nsep.end(),
                    [](std::uint32_t n) { return n < 3000; }));
  EXPECT_GE(under_3000, b.nsep.size() * 8 / 10);
  EXPECT_GE(*std::max_element(b.nsep.begin(), b.nsep.end()), 8000u);
}

TEST(Generator, AllProteinsValid) {
  for (const auto& p : default_benchmark().proteins)
    EXPECT_NO_THROW(p.validate());
}

TEST(Generator, AtomCountsRespectClamp) {
  const BenchmarkSpec spec;
  for (const auto& p : default_benchmark().proteins) {
    EXPECT_GE(p.size(), spec.min_atoms);
    EXPECT_LE(p.size(), spec.max_atoms);
  }
}

TEST(Generator, NetChargesNearNeutral) {
  for (const auto& p : default_benchmark().proteins)
    EXPECT_LE(std::abs(p.net_charge()), 1.0);
}

TEST(Generator, AllCouplesIncludesSelfDocking) {
  BenchmarkSpec spec;
  spec.count = 4;
  spec.target_total_nsep = 0;
  spec.outlier_nsep_target = 0;
  const Benchmark b = generate_benchmark(spec);
  const auto couples = b.all_couples();
  EXPECT_EQ(couples.size(), 16u);  // 4^2, self-docking included
  EXPECT_NE(std::find(couples.begin(), couples.end(), Couple{2, 2}),
            couples.end());
}

TEST(Generator, RejectsBadSpecs) {
  BenchmarkSpec spec;
  spec.count = 0;
  EXPECT_THROW(generate_benchmark(spec), hcmd::ConfigError);
  spec = {};
  spec.min_atoms = 100;
  spec.max_atoms = 50;
  EXPECT_THROW(generate_benchmark(spec), hcmd::ConfigError);
  spec = {};
  spec.median_atoms = 5;  // below min_atoms
  EXPECT_THROW(generate_benchmark(spec), hcmd::ConfigError);
  spec = {};
  spec.charged_fraction = 1.5;
  EXPECT_THROW(generate_benchmark(spec), hcmd::ConfigError);
}

TEST(Generator, SingleProteinHelper) {
  const ReducedProtein p = generate_protein(3, 100, 1.5, 42);
  EXPECT_EQ(p.id(), 3u);
  EXPECT_EQ(p.size(), 100u);
  EXPECT_NO_THROW(p.validate());
}

TEST(Generator, SingleProteinDeterministic) {
  const ReducedProtein a = generate_protein(1, 80, 1.0, 7);
  const ReducedProtein b = generate_protein(1, 80, 1.0, 7);
  EXPECT_EQ(a, b);
}

class CalibrationSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint64_t>> {
};

TEST_P(CalibrationSweep, TotalNsepWithinTolerance) {
  const auto [count, target] = GetParam();
  BenchmarkSpec spec;
  spec.count = count;
  spec.target_total_nsep = target;
  spec.outlier_nsep_target = 0;
  const Benchmark b = generate_benchmark(spec);
  const double err = std::abs(static_cast<double>(b.total_nsep()) -
                              static_cast<double>(target)) /
                     static_cast<double>(target);
  EXPECT_LE(err, 4.0 * spec.total_tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CalibrationSweep,
    ::testing::Values(std::make_pair(32u, std::uint64_t{50'000}),
                      std::make_pair(64u, std::uint64_t{120'000}),
                      std::make_pair(168u, std::uint64_t{294'533}),
                      std::make_pair(100u, std::uint64_t{400'000})));

}  // namespace
}  // namespace hcmd::proteins
