#include "util/exact_sum.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace hcmd::util {
namespace {

TEST(ExactSum, MatchesPlainSumForSmallExactCases) {
  ExactSum s;
  s.add(1.0);
  s.add(2.0);
  s.add(0.25);
  EXPECT_EQ(s.round(), 3.25);
  EXPECT_FALSE(s.zero());
}

TEST(ExactSum, EmptyIsZero) {
  ExactSum s;
  EXPECT_TRUE(s.zero());
  EXPECT_EQ(s.round(), 0.0);
  s.add(0.0);
  EXPECT_TRUE(s.zero());
}

TEST(ExactSum, OrderIndependent) {
  // A wide magnitude spread where plain left-to-right double summation is
  // order-dependent; the exact accumulator must not be.
  Rng rng(42);
  std::vector<double> xs;
  for (int i = 0; i < 10'000; ++i)
    xs.push_back(rng.uniform(0.0, 1.0) *
                 std::ldexp(1.0, static_cast<int>(rng.uniform_int(0, 120)) - 60));

  ExactSum forward;
  for (double x : xs) forward.add(x);

  std::vector<double> rev(xs.rbegin(), xs.rend());
  ExactSum backward;
  for (double x : rev) backward.add(x);

  EXPECT_EQ(forward.round(), backward.round());
}

TEST(ExactSum, MergeEqualsSequentialAtAnyPartition) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 5'000; ++i)
    xs.push_back(rng.exponential(3600.0));

  ExactSum sequential;
  for (double x : xs) sequential.add(x);

  for (std::size_t shards : {2u, 3u, 7u, 64u}) {
    std::vector<ExactSum> parts(shards);
    for (std::size_t i = 0; i < xs.size(); ++i) parts[i % shards].add(xs[i]);
    ExactSum merged;
    for (const auto& p : parts) merged.merge(p);
    EXPECT_EQ(merged.round(), sequential.round()) << shards << " shards";
  }
}

TEST(ExactSum, ExactAcrossMagnitudeCancellationScale) {
  // 2^60 followed by 2^-40 added a million times: a double accumulator
  // would drop every small term; the exact one keeps all of them.
  ExactSum s;
  s.add(std::ldexp(1.0, 60));
  const double tiny = std::ldexp(1.0, -40);
  for (int i = 0; i < 1'000'000; ++i) s.add(tiny);
  const double expect = std::ldexp(1.0, 60) + 1'000'000.0 * tiny;
  EXPECT_EQ(s.round(), expect);
}

TEST(ExactSum, HandlesSubnormalsAndHugeValues) {
  ExactSum s;
  s.add(std::numeric_limits<double>::denorm_min());
  s.add(std::numeric_limits<double>::max() / 4.0);
  EXPECT_FALSE(s.zero());
  EXPECT_GT(s.round(), 0.0);

  ExactSum tiny_only;
  tiny_only.add(std::numeric_limits<double>::denorm_min());
  tiny_only.add(std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(tiny_only.round(), 2.0 * std::numeric_limits<double>::denorm_min());
}

TEST(ExactSum, RejectsNegativeAndNonFinite) {
  ExactSum s;
  EXPECT_THROW(s.add(-1.0), std::logic_error);
  EXPECT_THROW(s.add(std::numeric_limits<double>::infinity()),
               std::logic_error);
}

TEST(ExactBinnedSeries, BinsAndMergesLikeTimeBinnedSeries) {
  const double week = 604'800.0;
  ExactBinnedSeries a(0.0, week);
  ExactBinnedSeries b(0.0, week);
  a.add(100.0, 1.5);
  a.add(week + 1.0, 2.0);
  b.add(200.0, 0.5);
  b.add(2.5 * week, 4.0);
  a.merge(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.value(0), 2.0);
  EXPECT_EQ(a.value(1), 2.0);
  EXPECT_EQ(a.value(2), 4.0);
}

TEST(ExactBinnedSeries, ShardedAccumulationIsPartitionInvariant) {
  const double week = 604'800.0;
  Rng rng(2007);
  struct Sample { double t, x; };
  std::vector<Sample> samples;
  for (int i = 0; i < 20'000; ++i)
    samples.push_back({rng.uniform(0.0, 26.0 * week), rng.exponential(7200.0)});

  ExactBinnedSeries sequential(0.0, week);
  for (const auto& s : samples) sequential.add(s.t, s.x);

  for (std::size_t shards : {2u, 4u, 7u}) {
    std::vector<ExactBinnedSeries> parts(shards, ExactBinnedSeries(0.0, week));
    for (std::size_t i = 0; i < samples.size(); ++i)
      parts[i % shards].add(samples[i].t, samples[i].x);
    ExactBinnedSeries merged(0.0, week);
    for (const auto& p : parts) merged.merge(p);
    ASSERT_EQ(merged.size(), sequential.size());
    for (std::size_t i = 0; i < merged.size(); ++i)
      EXPECT_EQ(merged.value(i), sequential.value(i)) << "bin " << i;
  }
}

}  // namespace
}  // namespace hcmd::util
