#include "analysis/trend.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "server/credit.hpp"
#include "util/duration.hpp"

namespace hcmd::analysis {
namespace {

TEST(Trend, MeanScoreInvertsCredit) {
  // One reference hour of work claims kCreditPerReferenceHour; a device
  // that needed 4 accounted hours for it has score 0.25.
  const double credit = server::kCreditPerReferenceHour;
  EXPECT_NEAR(mean_benchmark_score(credit, 4.0 * util::kSecondsPerHour),
              0.25, 1e-12);
  EXPECT_EQ(mean_benchmark_score(1.0, 0.0), 0.0);
}

TEST(Trend, RecoversSyntheticExponentialGrowth) {
  // Fleet score grows 10 %/year; runtime constant per week.
  const double weekly_runtime = 1e6;
  const double weekly_rate = std::pow(1.10, 7.0 / 365.0);
  std::vector<double> credit, runtime;
  double score = 0.25;
  for (int week = 0; week < 104; ++week) {
    const double ref_seconds = weekly_runtime * score;
    credit.push_back(ref_seconds / util::kSecondsPerHour *
                     server::kCreditPerReferenceHour);
    runtime.push_back(weekly_runtime);
    score *= weekly_rate;
  }
  const HardwareTrend trend = estimate_trend(credit, runtime);
  EXPECT_NEAR(trend.annual_improvement, 0.10, 0.003);
  EXPECT_GT(trend.log_fit.r, 0.999);
}

TEST(Trend, SkipsEmptyBins) {
  std::vector<double> credit{0.0, 100.0, 0.0, 110.0};
  std::vector<double> runtime{0.0, 1e5, 0.0, 1e5};
  const HardwareTrend trend = estimate_trend(credit, runtime);
  ASSERT_EQ(trend.weekly_score.size(), 4u);
  EXPECT_EQ(trend.weekly_score[0], 0.0);
  EXPECT_GT(trend.weekly_score[1], 0.0);
  // Fit uses only the two non-empty bins.
  EXPECT_GT(trend.annual_improvement, 0.0);
}

TEST(Trend, FlatFleetGivesZeroImprovement) {
  std::vector<double> credit(20, 500.0);
  std::vector<double> runtime(20, 1e5);
  const HardwareTrend trend = estimate_trend(credit, runtime);
  EXPECT_NEAR(trend.annual_improvement, 0.0, 1e-9);
}

TEST(Trend, TooFewBinsGivesNoFit) {
  std::vector<double> credit{100.0};
  std::vector<double> runtime{1e5};
  const HardwareTrend trend = estimate_trend(credit, runtime);
  EXPECT_EQ(trend.annual_improvement, 0.0);
}

TEST(Trend, TwoPointEstimate) {
  EXPECT_NEAR(annualized_improvement(0.25, 0.25 * 1.21, 2.0), 0.10, 1e-9);
  EXPECT_NEAR(annualized_improvement(0.3, 0.3, 5.0), 0.0, 1e-12);
  EXPECT_LT(annualized_improvement(0.3, 0.25, 1.0), 0.0);
  EXPECT_THROW(annualized_improvement(0.0, 0.25, 1.0), std::logic_error);
}

}  // namespace
}  // namespace hcmd::analysis
