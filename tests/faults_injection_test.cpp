// End-to-end fault injection through the server/engine/fleet stack: outage
// windows block issue and delivery, corruption is caught by quorum
// validation, losses are recovered by deadline reissue, stragglers slow
// down, churn spikes kill, and an inert schedule changes nothing at all.
#include "faults/schedule.hpp"

#include <gtest/gtest.h>

#include "client/fleet.hpp"
#include "core/shard_engine.hpp"
#include "util/duration.hpp"

namespace hcmd::client {
namespace {

using util::kSecondsPerDay;
using util::kSecondsPerHour;
using util::kSecondsPerWeek;

std::vector<packaging::Workunit> make_catalog(std::size_t n,
                                              double ref_seconds) {
  std::vector<packaging::Workunit> catalog;
  for (std::size_t i = 0; i < n; ++i) {
    packaging::Workunit wu;
    wu.id = i;
    wu.receptor = 0;
    wu.ligand = 0;
    wu.isep_begin = 0;
    wu.isep_end = 10;
    wu.reference_seconds = ref_seconds;
    catalog.push_back(wu);
  }
  return catalog;
}

/// Like client_fleet_test's harness; the engine owns the fault layer (one
/// schedule per shard plus the server-side instance) and schedules the
/// plan's spike/outage events itself, exactly as the campaign layer runs.
struct Harness {
  sim::MetricSet metrics{kSecondsPerWeek};
  server::ShareSchedule schedule;
  server::ProjectServer project;
  core::ShardEngine engine;

  explicit Harness(const faults::FaultPlan& plan, std::size_t workunits,
                   double ref_seconds = 2.0 * 3600.0,
                   server::ServerConfig server_cfg = plain_server_config(),
                   std::uint32_t shards = 1)
      : schedule(always_hcmd()),
        project(make_catalog(workunits, ref_seconds), server_cfg),
        engine(project, schedule, metrics, plan,
               util::Rng(2007).fork("faults"), make_options(shards)) {}

  /// Faults-free control harness (an inert plan attaches nothing).
  explicit Harness(std::size_t workunits)
      : Harness(faults::FaultPlan{}, workunits) {}

  static core::ShardEngineOptions make_options(std::uint32_t shards) {
    core::ShardEngineOptions o;
    o.shards = shards;
    return o;
  }

  static server::ServerConfig plain_server_config() {
    server::ServerConfig cfg;
    cfg.validation.quorum2_until = 0.0;
    cfg.validation.spot_check_fraction = 0.0;
    cfg.endgame_max_outstanding = 0;
    return cfg;
  }

  static server::ShareScheduleParams always_hcmd() {
    server::ShareScheduleParams p;
    p.control_share = 1.0;
    p.full_share = 1.0;
    return p;
  }

  static volunteer::DeviceSpec reliable_device(std::uint32_t id) {
    volunteer::DeviceSpec d;
    d.id = id;
    d.join_time = 0.0;
    d.speed_factor = 1.0;
    d.throttle = 1.0;
    d.contention = 1.0;
    d.screensaver_overhead = 1.0;
    d.on_mean_seconds = 1e9;
    d.off_mean_seconds = 60.0;
    d.lifetime_seconds = 1e12;
    d.error_rate = 0.0;
    d.abandon_rate = 0.0;
    return d;
  }

  std::uint32_t add(const volunteer::DeviceSpec& spec) {
    engine.add_device(spec, util::Rng(1000 + spec.id));
    return spec.id;
  }

  void run(double until) { engine.run_until(until); }
  faults::FaultCounters fault_counters() const {
    return engine.fault_counters();
  }
};

// An inert plan wired through everything must reproduce the faults-free run
// event for event: same issue times, same receipt times, same counters.
TEST(FaultsInjection, InertScheduleIsBitExact) {
  faults::FaultPlan inert;
  Harness with(inert, 6);
  Harness without(6);
  ASSERT_FALSE(with.engine.faults_active());
  for (auto* h : {&with, &without}) {
    h->add(Harness::reliable_device(0));
    h->add(Harness::reliable_device(1));
    h->run(4.0 * kSecondsPerWeek);
  }
  const auto& a = with.project.counters();
  const auto& b = without.project.counters();
  EXPECT_EQ(a.results_sent, b.results_sent);
  EXPECT_EQ(a.results_received, b.results_received);
  EXPECT_EQ(a.results_valid, b.results_valid);
  ASSERT_EQ(a.results_sent, b.results_sent);
  for (std::uint64_t i = 0; i < a.results_sent; ++i) {
    EXPECT_DOUBLE_EQ(with.project.result(i).sent_time,
                     without.project.result(i).sent_time);
    EXPECT_DOUBLE_EQ(with.project.result(i).received_time,
                     without.project.result(i).received_time);
  }
  EXPECT_EQ(with.fault_counters().outage_denied_requests, 0u);
  EXPECT_EQ(with.fault_counters().lost_results, 0u);
}

TEST(FaultsInjection, OutageBlocksIssueAndDefersDelivery) {
  faults::FaultPlan plan;
  const double begin = 1.0 * kSecondsPerHour;
  const double end = 5.0 * kSecondsPerHour;
  plan.outages.push_back({begin, end});
  plan.backoff_initial_seconds = 5.0 * 60.0;
  plan.backoff_cap_seconds = 30.0 * 60.0;
  Harness h(plan, 8);
  h.add(Harness::reliable_device(0));
  h.run(2.0 * kSecondsPerWeek);

  // Full recovery: the catalogue still drains after the window.
  EXPECT_TRUE(h.project.complete());
  const auto& c = h.project.counters();
  EXPECT_EQ(c.results_valid, 8u);

  // Zero issues inside the window, and nothing received inside it either
  // (the 2 h workunit finishing mid-outage sits in the client outbox).
  for (std::uint64_t i = 0; i < c.results_sent; ++i) {
    const auto& r = h.project.result(i);
    EXPECT_FALSE(r.sent_time >= begin && r.sent_time < end)
        << "result " << i << " issued mid-outage at " << r.sent_time;
    if (r.received_time >= 0.0) {
      EXPECT_FALSE(r.received_time >= begin && r.received_time < end)
          << "result " << i << " received mid-outage at " << r.received_time;
    }
  }

  // The device finished a workunit inside the window: its upload was
  // deferred and its next work request denied and backed off.
  const auto f = h.fault_counters();
  EXPECT_GE(f.deferred_uploads, 1u);
  EXPECT_GE(f.backoff_retries, 1u);
  EXPECT_GE(f.outage_denied_requests, 1u);
}

TEST(FaultsInjection, CorruptionIsCaughtByQuorumAndNeverAssimilated) {
  faults::FaultPlan plan;
  plan.corruption_rate = 0.3;
  server::ServerConfig cfg = Harness::plain_server_config();
  cfg.validation.quorum2_until = 1e12;  // quorum-2 for the whole run
  Harness h(plan, 20, 2.0 * 3600.0, cfg);
  h.add(Harness::reliable_device(0));
  h.add(Harness::reliable_device(1));
  h.run(8.0 * kSecondsPerWeek);

  EXPECT_TRUE(h.project.complete());
  const auto& c = h.project.counters();
  const auto f = h.fault_counters();
  EXPECT_GT(f.corrupted_results, 0u);
  // Every corrupted return either mismatched a clean partner (quorum
  // mismatch -> extra copy) or arrived after completion; none were accepted.
  EXPECT_GT(c.quorum_mismatches, 0u);
  EXPECT_EQ(c.corrupt_assimilated, 0u);
  EXPECT_EQ(c.results_valid, 20u);
  // Catching the corruption costs extra copies beyond plain quorum-2.
  EXPECT_GT(c.results_sent, 40u);
}

TEST(FaultsInjection, LostResultsAreRecoveredByDeadlineReissue) {
  faults::FaultPlan plan;
  plan.loss_rate = 0.5;
  server::ServerConfig cfg = Harness::plain_server_config();
  cfg.deadline = 1.0 * kSecondsPerDay;  // keep the recovery cycle short
  Harness h(plan, 5, 2.0 * 3600.0, cfg);
  h.add(Harness::reliable_device(0));
  h.run(6.0 * kSecondsPerWeek);

  EXPECT_TRUE(h.project.complete());
  const auto& c = h.project.counters();
  const auto f = h.fault_counters();
  EXPECT_GT(f.lost_results, 0u);
  // Each loss is invisible until its deadline passes.
  EXPECT_GE(c.results_timed_out, f.lost_results);
  EXPECT_EQ(c.results_valid, 5u);
}

TEST(FaultsInjection, StragglersRunSlower) {
  faults::FaultPlan plan;
  plan.straggler_fraction = 1.0;  // every device is a straggler
  plan.straggler_slowdown = 4.0;
  Harness h(plan, 1);
  const std::uint32_t dev = h.add(Harness::reliable_device(0));
  h.run(2.0 * kSecondsPerWeek);

  EXPECT_EQ(h.fault_counters().straggler_devices, 1u);
  // A 2 h reference workunit at 4x slowdown reports ~8 h of runtime.
  const auto runtimes = h.engine.reported_hcmd_runtimes(dev);
  ASSERT_GE(runtimes.size(), 1u);
  EXPECT_NEAR(runtimes[0], 8.0 * 3600.0, 600.0);
}

TEST(FaultsInjection, ChurnSpikeKillsAliveDevices) {
  faults::FaultPlan plan;
  plan.churn_spikes.push_back({1.0 * kSecondsPerDay, 1.0});
  Harness h(plan, 1000);
  for (std::uint32_t i = 0; i < 10; ++i)
    h.add(Harness::reliable_device(i));
  // The engine schedules the spike from the plan; running past its time
  // fires the per-shard kills and the single fleet-wide spike note.
  h.run(1.0 * kSecondsPerDay);

  const auto f = h.fault_counters();
  EXPECT_EQ(f.churn_spikes, 1u);
  EXPECT_EQ(f.churn_killed, 10u);

  // Everyone is dead: no further results ever arrive.
  const std::uint64_t received = h.project.counters().results_received;
  h.run(2.0 * kSecondsPerWeek);
  EXPECT_EQ(h.project.counters().results_received, received);
  EXPECT_FALSE(h.project.complete());
}

TEST(FaultsInjection, ShardedChaosMatchesSequentialExactly) {
  // The full fault family at K = 1 vs K = 4: per-device fault streams fork
  // from global ids and the spike/outage events replay in the same merged
  // order, so every counter and result timestamp matches bit for bit.
  faults::FaultPlan plan;
  plan.corruption_rate = 0.1;
  plan.loss_rate = 0.1;
  plan.straggler_fraction = 0.3;
  plan.straggler_slowdown = 3.0;
  plan.outages.push_back({30.0 * kSecondsPerHour, 40.0 * kSecondsPerHour});
  plan.churn_spikes.push_back({2.0 * kSecondsPerDay, 0.4});
  server::ServerConfig cfg = Harness::plain_server_config();
  cfg.validation.quorum2_until = 1e12;
  Harness seq(plan, 30, 2.0 * 3600.0, cfg);
  Harness par(plan, 30, 2.0 * 3600.0, cfg, /*shards=*/4);
  for (auto* h : {&seq, &par}) {
    for (std::uint32_t i = 0; i < 9; ++i)
      h->add(Harness::reliable_device(i));
    h->run(6.0 * kSecondsPerWeek);
  }
  const auto& a = seq.project.counters();
  const auto& b = par.project.counters();
  EXPECT_EQ(a.results_sent, b.results_sent);
  EXPECT_EQ(a.results_received, b.results_received);
  EXPECT_EQ(a.results_valid, b.results_valid);
  EXPECT_EQ(a.results_timed_out, b.results_timed_out);
  EXPECT_EQ(a.quorum_mismatches, b.quorum_mismatches);
  const auto fa = seq.fault_counters();
  const auto fb = par.fault_counters();
  EXPECT_EQ(fa.corrupted_results, fb.corrupted_results);
  EXPECT_EQ(fa.lost_results, fb.lost_results);
  EXPECT_EQ(fa.churn_killed, fb.churn_killed);
  EXPECT_EQ(fa.churn_spikes, fb.churn_spikes);
  EXPECT_EQ(fa.straggler_devices, fb.straggler_devices);
  ASSERT_EQ(a.results_sent, b.results_sent);
  for (std::uint64_t i = 0; i < a.results_sent; ++i) {
    EXPECT_DOUBLE_EQ(seq.project.result(i).sent_time,
                     par.project.result(i).sent_time);
    EXPECT_DOUBLE_EQ(seq.project.result(i).received_time,
                     par.project.result(i).received_time);
  }
}

}  // namespace
}  // namespace hcmd::client
