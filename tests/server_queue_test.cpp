// Regression tests for the server's bounded bookkeeping:
//  * the end-game staging queue must never outgrow the live workunit count
//    (an earlier version re-enqueued every picked index unconditionally, so
//    a long tail of idle devices made the queue grow without bound);
//  * the per-workunit issue counter must count past 255 (it was a saturating
//    uint8 — a workunit hammered by a flaky fleet silently pinned at 255).
#include "server/server.hpp"

#include <gtest/gtest.h>

namespace hcmd::server {
namespace {

std::vector<packaging::Workunit> make_catalog(std::size_t n,
                                              double ref_seconds = 3600.0) {
  std::vector<packaging::Workunit> catalog;
  for (std::size_t i = 0; i < n; ++i) {
    packaging::Workunit wu;
    wu.id = i;
    wu.receptor = 0;
    wu.ligand = 0;
    wu.isep_begin = 0;
    wu.isep_end = 10;
    wu.reference_seconds = ref_seconds;
    catalog.push_back(wu);
  }
  return catalog;
}

ResultReport ok_report() {
  ResultReport r;
  r.reported_runtime = 1000.0;
  r.reference_seconds = 3600.0;
  return r;
}

ResultReport error_report() {
  ResultReport r;
  r.computation_error = true;
  return r;
}

TEST(ServerQueue, EndgameQueueBoundedByLiveWorkunits) {
  ServerConfig cfg;
  cfg.validation.quorum2_until = 0.0;
  cfg.validation.spot_check_fraction = 0.0;
  cfg.endgame_max_outstanding = 3;
  const std::size_t kWorkunits = 10;
  ProjectServer server(make_catalog(kWorkunits), cfg);

  // Drain the fresh catalogue: one primary copy per workunit.
  std::uint32_t device = 0;
  for (std::size_t i = 0; i < kWorkunits; ++i)
    ASSERT_TRUE(server.request_work(device++, 0.0).has_value());

  // A large idle fleet keeps asking for work. Every request either gets an
  // end-game duplicate or nothing; the staging queue must stay bounded by
  // the live workunit count at every step.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) {
      server.request_work(device++, 1.0);
      EXPECT_LE(server.endgame_queue_size(), kWorkunits);
    }
  }
  // Saturation: every workunit holds exactly endgame_max_outstanding copies.
  for (std::uint32_t wu = 0; wu < kWorkunits; ++wu)
    EXPECT_EQ(server.workunit_outstanding(wu), cfg.endgame_max_outstanding);

  // Complete half the catalogue; the bound follows the live count down.
  for (std::uint64_t r = 0; r < kWorkunits / 2; ++r)
    server.report_result(r, 2.0, ok_report());
  for (int i = 0; i < 100; ++i) {
    server.request_work(device++, 3.0);
    EXPECT_LE(server.endgame_queue_size(), kWorkunits - kWorkunits / 2);
  }
}

TEST(ServerQueue, EndgameStopsDuplicatingCompletedWork) {
  ServerConfig cfg;
  cfg.validation.quorum2_until = 0.0;
  cfg.validation.spot_check_fraction = 0.0;
  cfg.endgame_max_outstanding = 2;
  ProjectServer server(make_catalog(1), cfg);

  ASSERT_TRUE(server.request_work(0, 0.0).has_value());
  server.report_result(0, 1.0, ok_report());
  EXPECT_TRUE(server.complete());
  // No live work: requests return nothing and the queue stays empty.
  EXPECT_FALSE(server.request_work(1, 2.0).has_value());
  EXPECT_EQ(server.endgame_queue_size(), 0u);
}

TEST(ServerQueue, IssueCounterCountsPast255) {
  ServerConfig cfg;
  cfg.validation.quorum2_until = 0.0;
  cfg.validation.spot_check_fraction = 0.0;
  cfg.endgame_max_outstanding = 0;
  ProjectServer server(make_catalog(1), cfg);

  // A flaky fleet errors out 300 times; every error re-queues the workunit
  // and the next request re-issues it. With the old uint8 counter this
  // pinned at 255.
  double t = 0.0;
  for (int i = 0; i < 300; ++i) {
    const auto a = server.request_work(0, t);
    ASSERT_TRUE(a.has_value()) << "round " << i;
    server.report_result(a->result_id, t + 1.0, error_report());
    t += 2.0;
  }
  EXPECT_EQ(server.workunit_issues(0), 300u);
  EXPECT_EQ(server.counters().results_invalid, 300u);
  EXPECT_EQ(server.workunit_outstanding(0), 0u);

  // The workunit still completes normally afterwards.
  const auto a = server.request_work(0, t);
  ASSERT_TRUE(a.has_value());
  server.report_result(a->result_id, t + 1.0, ok_report());
  EXPECT_TRUE(server.complete());
  EXPECT_EQ(server.workunit_issues(0), 301u);
}

TEST(ServerQueue, ReissueQueueCountsQuorumMismatchTwice) {
  // A quorum mismatch legitimately queues the same workunit twice (both
  // members are discarded and the quorum restarts); the queue bookkeeping
  // must deliver both copies.
  ServerConfig cfg;
  cfg.validation.quorum2_until = 1e12;  // quorum of 2 throughout
  cfg.endgame_max_outstanding = 0;
  ProjectServer server(make_catalog(1), cfg);

  const auto a = server.request_work(0, 0.0);
  const auto b = server.request_work(1, 0.0);
  ASSERT_TRUE(a.has_value() && b.has_value());
  ResultReport clean = ok_report();
  ResultReport corrupt = ok_report();
  corrupt.silent_error = true;  // passes the range check, fails comparison
  server.report_result(a->result_id, 1.0, clean);
  server.report_result(b->result_id, 1.0, corrupt);
  EXPECT_EQ(server.counters().quorum_mismatches, 1u);
  EXPECT_EQ(server.reissue_queue_size(), 2u);
  // Both quorum members can be re-issued immediately.
  EXPECT_TRUE(server.request_work(2, 2.0).has_value());
  EXPECT_TRUE(server.request_work(3, 2.0).has_value());
  EXPECT_EQ(server.reissue_queue_size(), 0u);
  EXPECT_EQ(server.workunit_outstanding(0), 2u);
}

}  // namespace
}  // namespace hcmd::server
