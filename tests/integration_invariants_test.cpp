// Integration: conservation invariants of the campaign simulation.
// Whatever the parameters, the result lifecycle must balance and the
// assimilated work must equal the catalogue exactly once.
#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/phase2.hpp"
#include "util/duration.hpp"

namespace hcmd::core {
namespace {

void check_invariants(const CampaignReport& r) {
  const auto& c = r.counters;

  // Lifecycle balance: every received result is in exactly one terminal
  // class (or still held for quorum comparison).
  EXPECT_EQ(c.results_received, c.results_valid + c.results_quorum_extra +
                                    c.results_invalid + c.results_redundant +
                                    c.results_pending);
  if (r.completed) EXPECT_EQ(c.results_pending, 0u);

  // Everything received was sent. (Timed-out instances may still be
  // received later, so sent >= received always, with the gap being
  // never-returned instances.)
  EXPECT_GE(c.results_sent, c.results_received);

  // One canonical result per completed workunit.
  EXPECT_EQ(c.results_valid, c.workunits_completed);

  if (r.completed) {
    // Useful reference work equals the scaled catalogue total exactly.
    // (catalog total = scale-sampled slice of the full workload.)
    EXPECT_GT(c.useful_reference_seconds, 0.0);
    const double catalog_total = c.useful_reference_seconds;
    EXPECT_NEAR(catalog_total * (1.0 / r.scale),
                r.total_reference_seconds,
                0.12 * r.total_reference_seconds);
  }

  // Redundancy accounting is self-consistent.
  if (c.results_valid > 0) {
    EXPECT_NEAR(r.redundancy_factor * static_cast<double>(c.results_valid),
                static_cast<double>(c.results_received),
                1.0);
  }

  // Reported runtime is at least the useful reference work (volunteer
  // processors are never faster than the reference here).
  EXPECT_GE(c.reported_runtime_seconds, c.useful_reference_seconds);

  // Weekly series are non-negative and their totals match the counters.
  double weekly_results = 0.0;
  for (double v : r.results_received_weekly) {
    EXPECT_GE(v, 0.0);
    weekly_results += v;
  }
  // Series are truncated at the completion week; allow the drain-week gap.
  EXPECT_LE(weekly_results * r.scale,
            static_cast<double>(c.results_received) + 0.5);
}

TEST(Invariants, DefaultCampaign) {
  CampaignConfig config;
  config.scale = 0.01;
  check_invariants(run_campaign(config));
}

TEST(Invariants, NoRedundancyConfiguration) {
  CampaignConfig config;
  config.scale = 0.005;
  config.server.validation.quorum2_until = 0.0;
  config.server.validation.spot_check_fraction = 0.0;
  config.devices.result_error_rate = 0.0;
  config.devices.abandon_rate = 0.0;
  const CampaignReport r = run_campaign(config);
  check_invariants(r);
  // With every waste channel closed, late device deaths are the only
  // source of redundancy.
  EXPECT_LT(r.redundancy_factor, 1.1);
  EXPECT_EQ(r.counters.results_invalid, 0u);
}

TEST(Invariants, HighFailureConfiguration) {
  CampaignConfig config;
  config.scale = 0.005;
  config.devices.result_error_rate = 0.10;
  config.devices.abandon_rate = 0.10;
  config.devices.lifetime_mean_days = 90.0;
  config.max_weeks = 60.0;
  const CampaignReport r = run_campaign(config);
  check_invariants(r);
  EXPECT_GT(r.redundancy_factor, 1.3);
}

TEST(Invariants, DiurnalAvailabilityCampaign) {
  // Time-of-day availability profiles change *when* devices crunch, not how
  // much: the campaign still completes with comparable headline ratios.
  CampaignConfig config;
  config.scale = 0.005;
  config.devices.diurnal_enabled = true;
  config.max_weeks = 45.0;
  const CampaignReport r = run_campaign(config);
  check_invariants(r);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.redundancy_factor, 1.15);
  EXPECT_LT(r.redundancy_factor, 1.7);
  EXPECT_NEAR(r.speeddown.net_speeddown(), 3.96, 0.8);
}

TEST(Invariants, SilentErrorCampaign) {
  // Silent corruption with adaptive replication: books balance and the
  // oracle counter stays a small fraction of the archive.
  CampaignConfig config;
  config.scale = 0.005;
  config.devices.flaky_fraction = 0.03;
  config.devices.flaky_silent_error_rate = 0.15;
  config.server.validation.adaptive = true;
  config.max_weeks = 45.0;
  const CampaignReport r = run_campaign(config);
  check_invariants(r);
  EXPECT_TRUE(r.completed);
  EXPECT_LT(static_cast<double>(r.counters.corrupt_assimilated),
            0.01 * static_cast<double>(r.counters.workunits_completed));
}

TEST(Invariants, Phase2Campaign) {
  Phase2Scenario scenario;
  scenario.proteins_simulated = 60;
  scenario.scale = 1.0 / 1000.0;
  scenario.grid_vftp = 240'000.0;
  check_invariants(run_campaign(make_phase2_config(scenario)));
}

class InvariantSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InvariantSeedSweep, HoldAcrossSeeds) {
  CampaignConfig config;
  config.scale = 0.004;
  config.seed = GetParam();
  check_invariants(run_campaign(config));
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantSeedSweep,
                         ::testing::Values(1ull, 7ull, 99ull, 2026ull));

}  // namespace
}  // namespace hcmd::core
