// The sharded engine's headline contract: a campaign run is *bit-identical*
// at any shard count. Every ordering key in the barrier merge is built from
// shard-count-independent quantities (message time, global device id,
// per-device sequence, result id), every RNG stream forks from a global id,
// and the weekly run-time meters accumulate in exact (superaccumulator)
// bins — so K = 2, 4, 7 must reproduce the K = 1 report byte for byte:
// the F6a/F6b series, the Table-2 aggregates, the Fig. 7/8 distributions,
// the lifecycle counters and the fault tallies.
#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "faults/plan.hpp"
#include "obs/trace.hpp"

namespace hcmd::core {
namespace {

CampaignConfig base_config() {
  CampaignConfig config;
  config.scale = 0.01;  // the golden-regression scale
  return config;
}

void expect_series_equal(const std::vector<double>& a,
                         const std::vector<double>& b, const char* name) {
  ASSERT_EQ(a.size(), b.size()) << name;
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i], b[i]) << name << "[" << i << "]";  // bitwise, no NEAR
}

/// Full-report bit-identity: every number the paper figures and tables are
/// built from.
void expect_reports_identical(const CampaignReport& a,
                              const CampaignReport& b) {
  EXPECT_EQ(a.devices_simulated, b.devices_simulated);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.completion_weeks, b.completion_weeks);

  // Fig. 6 weekly series.
  expect_series_equal(a.hcmd_vftp_weekly, b.hcmd_vftp_weekly, "hcmd_vftp");
  expect_series_equal(a.wcg_vftp_weekly, b.wcg_vftp_weekly, "wcg_vftp");
  expect_series_equal(a.results_received_weekly, b.results_received_weekly,
                      "received");
  expect_series_equal(a.results_useful_weekly, b.results_useful_weekly,
                      "useful");
  expect_series_equal(a.credit_weekly, b.credit_weekly, "credit");

  // Table 2 aggregates.
  EXPECT_EQ(a.avg_hcmd_vftp_whole, b.avg_hcmd_vftp_whole);
  EXPECT_EQ(a.avg_hcmd_vftp_fullpower, b.avg_hcmd_vftp_fullpower);
  EXPECT_EQ(a.avg_wcg_vftp_whole, b.avg_wcg_vftp_whole);
  EXPECT_EQ(a.redundancy_factor, b.redundancy_factor);
  EXPECT_EQ(a.useful_fraction, b.useful_fraction);
  EXPECT_EQ(a.total_credit, b.total_credit);
  EXPECT_EQ(a.credit_reference_processors, b.credit_reference_processors);

  // Server lifecycle counters.
  EXPECT_EQ(a.counters.results_sent, b.counters.results_sent);
  EXPECT_EQ(a.counters.results_received, b.counters.results_received);
  EXPECT_EQ(a.counters.results_valid, b.counters.results_valid);
  EXPECT_EQ(a.counters.results_invalid, b.counters.results_invalid);
  EXPECT_EQ(a.counters.results_redundant, b.counters.results_redundant);
  EXPECT_EQ(a.counters.results_timed_out, b.counters.results_timed_out);
  EXPECT_EQ(a.counters.quorum_mismatches, b.counters.quorum_mismatches);
  EXPECT_EQ(a.counters.workunits_completed, b.counters.workunits_completed);
  EXPECT_EQ(a.counters.useful_reference_seconds,
            b.counters.useful_reference_seconds);
  EXPECT_EQ(a.counters.reported_runtime_seconds,
            b.counters.reported_runtime_seconds);

  // Fig. 8 runtime distribution.
  EXPECT_EQ(a.runtime_summary.count, b.runtime_summary.count);
  EXPECT_EQ(a.runtime_summary.mean, b.runtime_summary.mean);
  EXPECT_EQ(a.runtime_summary.median, b.runtime_summary.median);
  EXPECT_EQ(a.runtime_summary.stddev, b.runtime_summary.stddev);
  EXPECT_EQ(a.runtime_hours_hist.counts(), b.runtime_hours_hist.counts());

  // Fig. 7 snapshots.
  ASSERT_EQ(a.snapshots.size(), b.snapshots.size());
  for (std::size_t i = 0; i < a.snapshots.size(); ++i) {
    EXPECT_EQ(a.snapshots[i].proteins_done_fraction,
              b.snapshots[i].proteins_done_fraction);
    EXPECT_EQ(a.snapshots[i].computation_done_fraction,
              b.snapshots[i].computation_done_fraction);
    expect_series_equal(a.snapshots[i].per_protein_fraction,
                        b.snapshots[i].per_protein_fraction, "fig7");
  }

  // Fault tallies (zero for a faults-off run, but compared either way).
  EXPECT_EQ(a.faults.enabled, b.faults.enabled);
  EXPECT_EQ(a.faults.counters.corrupted_results,
            b.faults.counters.corrupted_results);
  EXPECT_EQ(a.faults.counters.lost_results, b.faults.counters.lost_results);
  EXPECT_EQ(a.faults.counters.churn_killed, b.faults.counters.churn_killed);
  EXPECT_EQ(a.faults.counters.churn_spikes, b.faults.counters.churn_spikes);
  EXPECT_EQ(a.faults.counters.backoff_retries,
            b.faults.counters.backoff_retries);
  EXPECT_EQ(a.faults.counters.straggler_devices,
            b.faults.counters.straggler_devices);

  // Validation-policy state mutates only inside merge-ordered server calls,
  // so every decision tally — and the reputation ledger behind them — must
  // be partition-invariant too.
  EXPECT_EQ(a.validation.policy.name, b.validation.policy.name);
  const auto& pa = a.validation.policy.counters;
  const auto& pb = b.validation.policy.counters;
  EXPECT_EQ(pa.decisions, pb.decisions);
  EXPECT_EQ(pa.quorum2_decisions, pb.quorum2_decisions);
  EXPECT_EQ(pa.spot_checks, pb.spot_checks);
  EXPECT_EQ(pa.solo_issues, pb.solo_issues);
  EXPECT_EQ(pa.escalations, pb.escalations);
  EXPECT_EQ(pa.trust_promotions, pb.trust_promotions);
  EXPECT_EQ(pa.trust_demotions, pb.trust_demotions);
  EXPECT_EQ(a.validation.policy.devices_tracked,
            b.validation.policy.devices_tracked);
  EXPECT_EQ(a.validation.policy.devices_trusted,
            b.validation.policy.devices_trusted);
  EXPECT_EQ(a.validation.policy.mean_score,
            b.validation.policy.mean_score);  // bitwise, no NEAR
  EXPECT_EQ(a.validation.corruption_injected, b.validation.corruption_injected);
  EXPECT_EQ(a.validation.corruption_assimilated,
            b.validation.corruption_assimilated);

  // Registry counters are striped atomics: exact in any interleaving, and
  // interned in a deterministic order on the main thread.
  ASSERT_EQ(a.telemetry_counters.size(), b.telemetry_counters.size());
  for (std::size_t i = 0; i < a.telemetry_counters.size(); ++i) {
    EXPECT_EQ(a.telemetry_counters[i].name, b.telemetry_counters[i].name);
    EXPECT_EQ(a.telemetry_counters[i].value, b.telemetry_counters[i].value)
        << a.telemetry_counters[i].name;
  }
}

const CampaignReport& baseline() {
  static const CampaignReport report = run_campaign(base_config());
  return report;
}

TEST(ShardDeterminism, BitIdenticalAcrossShardCounts) {
  for (const std::uint32_t k : {2u, 4u, 7u}) {
    CampaignConfig config = base_config();
    config.shards = k;
    const CampaignReport r = run_campaign(config);
    EXPECT_EQ(r.shards, k);
    SCOPED_TRACE(testing::Message() << "shards=" << k);
    expect_reports_identical(baseline(), r);
  }
}

TEST(ShardDeterminism, BitIdenticalUnderFaultInjection) {
  // The saboteur preset plus an in-flight corruption rate exercises every
  // fault family drawn from per-device streams (corruption, saboteurs,
  // loss, stragglers): the fault layer must also be partition-invariant.
  CampaignConfig seq = base_config();
  seq.faults = faults::fault_preset("saboteur-1pct");
  seq.faults.corruption_rate = 0.01;
  CampaignConfig par = seq;
  par.shards = 4;
  const CampaignReport a = run_campaign(seq);
  const CampaignReport b = run_campaign(par);
  EXPECT_TRUE(a.faults.enabled);
  EXPECT_GT(a.faults.counters.corrupted_results, 0u);
  EXPECT_GT(a.faults.counters.saboteur_devices, 0u);
  EXPECT_GT(a.faults.counters.saboteur_corrupted_results, 0u);
  expect_reports_identical(a, b);
}

TEST(ShardDeterminism, AdaptivePolicyBitIdenticalAcrossShards) {
  // The reputation ledger is the newest piece of merge-ordered server
  // state: an adaptive-policy campaign over a saboteur-carrying fleet must
  // reproduce the K = 1 report — including every trust promotion, spot
  // check and escalation — at K = 4.
  CampaignConfig seq = base_config();
  seq.server.policy = server::PolicyKind::kAdaptiveTrust;
  seq.faults = faults::fault_preset("saboteur-1pct");
  CampaignConfig par = seq;
  par.shards = 4;
  const CampaignReport a = run_campaign(seq);
  const CampaignReport b = run_campaign(par);
  EXPECT_EQ(a.validation.policy.name, "adaptive");
  EXPECT_GT(a.validation.policy.counters.spot_checks, 0u);
  EXPECT_GT(a.validation.policy.counters.escalations, 0u);
  EXPECT_GT(a.validation.corruption_injected, 0u);
  EXPECT_EQ(a.validation.corruption_assimilated, 0u);
  expect_reports_identical(a, b);
}

TEST(ShardDeterminism, TracedShardedRunKeepsMetricsIdentical) {
  // With K > 1 each shard records into a private tracer ring absorbed at
  // the end: the stream's interleaving may differ from a K = 1 trace, but
  // observation must stay pure — the merged report matches the untraced
  // K = 1 baseline bit for bit, and the absorbed per-category totals count
  // every event the shards saw.
  obs::Tracer tracer;
  CampaignInstruments instruments;
  instruments.tracer = &tracer;
  CampaignConfig config = base_config();
  config.shards = 4;
  const CampaignReport r = run_campaign(config, instruments);
  EXPECT_GT(tracer.recorded(), 0u);
  expect_reports_identical(baseline(), r);
}

}  // namespace
}  // namespace hcmd::core
