// Stress and arena-lifecycle tests for the pooled DES core: bit-identical
// replay under a large randomized op mix, FIFO ordering among simultaneous
// events at scale, and slot-reuse/generation semantics of EventHandle.
#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace hcmd::sim {
namespace {

/// Runs a randomized schedule/cancel/periodic workload of ~1e6 operations
/// and returns a trace fingerprint: a running hash of (event id, fire time)
/// in dispatch order. Two runs with the same seed must agree bit-exactly.
struct StressResult {
  std::uint64_t fingerprint = 0;
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t processed = 0;
};

StressResult run_stress(std::uint64_t seed, std::size_t ops) {
  Simulation sim;
  util::Rng rng(seed);
  StressResult out;

  auto mix = [&out](std::uint64_t id, SimTime t) {
    // Order-sensitive hash: any difference in dispatch order or times
    // changes the fingerprint.
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(t));
    __builtin_memcpy(&bits, &t, sizeof(bits));
    out.fingerprint = out.fingerprint * 0x9E3779B97F4A7C15ull + id;
    out.fingerprint ^= bits + (out.fingerprint << 6) + (out.fingerprint >> 2);
    ++out.fired;
  };

  std::vector<EventHandle> handles;
  handles.reserve(ops / 4);
  std::uint64_t next_id = 0;

  for (std::size_t i = 0; i < ops; ++i) {
    const double pick = rng.uniform(0.0, 1.0);
    if (pick < 0.45) {
      // One-shot at a random future time.
      const std::uint64_t id = next_id++;
      const SimTime t = sim.now() + rng.uniform(0.0, 1000.0);
      handles.push_back(sim.schedule_at(t, [&mix, id, t] { mix(id, t); }));
    } else if (pick < 0.55) {
      // Periodic series with a bounded number of occurrences.
      const std::uint64_t id = next_id++;
      auto remaining = static_cast<int>(rng.uniform(1.0, 6.0));
      handles.push_back(sim.schedule_periodic(
          sim.now() + rng.uniform(0.0, 50.0), rng.uniform(0.5, 20.0),
          [&mix, id, remaining](SimTime t) mutable {
            mix(id, t);
            return --remaining > 0;
          }));
    } else if (pick < 0.75 && !handles.empty()) {
      // Cancel a random outstanding handle (may already be spent).
      const auto idx =
          static_cast<std::size_t>(rng.uniform(0.0, 1.0) * handles.size());
      if (handles[idx % handles.size()].cancel()) ++out.cancelled;
    } else {
      // Advance the clock a little, firing whatever is due.
      sim.run_until(sim.now() + rng.uniform(0.0, 5.0));
    }
  }
  sim.run_until(sim.now() + 5000.0);  // drain what remains
  out.processed = sim.processed_events();
  return out;
}

TEST(SimulationStress, RandomizedMixReplaysBitIdentically) {
  // ~1e6 randomized schedule/cancel/periodic/run operations; the dispatch
  // trace (ids and times, in order) must be bit-identical across replays.
  const StressResult a = run_stress(17, 1'000'000);
  const StressResult b = run_stress(17, 1'000'000);
  EXPECT_GT(a.fired, 100'000u);
  // Cancel picks a uniformly random handle, most of which are already
  // spent; a few hundred live cancels is the expected yield.
  EXPECT_GT(a.cancelled, 500u);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.fired, b.fired);
  EXPECT_EQ(a.cancelled, b.cancelled);
  EXPECT_EQ(a.processed, b.processed);

  // A different seed must (overwhelmingly) produce a different trace.
  const StressResult c = run_stress(18, 1'000'000);
  EXPECT_NE(a.fingerprint, c.fingerprint);
}

TEST(SimulationStress, SimultaneousEventsKeepScheduleOrderAtScale) {
  // 10k events at the same instant interleaved with cancels: survivors
  // must fire in exactly the order they were scheduled.
  Simulation sim;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  constexpr int kEvents = 10'000;
  order.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    handles.push_back(sim.schedule_at(42.0, [&order, i] {
      order.push_back(i);
    }));
  }
  for (int i = 0; i < kEvents; i += 3) handles[i].cancel();  // every third
  sim.run_until();
  int expected = 0;
  std::size_t at = 0;
  for (int i = 0; i < kEvents; ++i) {
    if (i % 3 == 0) continue;  // cancelled
    ASSERT_LT(at, order.size());
    EXPECT_EQ(order[at], i) << "survivor " << expected << " out of order";
    ++at;
    ++expected;
  }
  EXPECT_EQ(order.size(), static_cast<std::size_t>(expected));
}

TEST(SimulationArena, SlotsAreReusedAcrossEventLifetimes) {
  // Churning one event at a time must not grow memory: the arena recycles
  // the same slot, which is observable through handles going stale.
  Simulation sim;
  for (int round = 0; round < 10'000; ++round) {
    EventHandle h = sim.schedule_at(sim.now() + 1.0, [] {});
    EXPECT_TRUE(h.pending());
    sim.step();
    EXPECT_FALSE(h.pending());
    EXPECT_FALSE(h.cancel());  // fired: cancel is a no-op
  }
  EXPECT_EQ(sim.processed_events(), 10'000u);
}

TEST(SimulationArena, StaleHandleToReusedSlotIsInert) {
  Simulation sim;
  // First occupant of the slot.
  EventHandle first = sim.schedule_at(1.0, [] {});
  sim.step();  // fires; slot returns to the free list
  EXPECT_FALSE(first.pending());

  // Second occupant reuses the same slot with a bumped generation.
  bool second_fired = false;
  EventHandle second =
      sim.schedule_at(2.0, [&second_fired] { second_fired = true; });
  EXPECT_TRUE(second.pending());

  // The stale handle must neither report pending nor cancel the newcomer.
  EXPECT_FALSE(first.pending());
  EXPECT_FALSE(first.cancel());
  EXPECT_TRUE(second.pending());

  sim.step();
  EXPECT_TRUE(second_fired);
}

TEST(SimulationArena, CancelledSlotReuseKeepsGenerationsDistinct) {
  Simulation sim;
  EventHandle a = sim.schedule_at(5.0, [] { FAIL() << "a was cancelled"; });
  EXPECT_TRUE(a.cancel());
  EXPECT_FALSE(a.cancel());  // double-cancel is a no-op

  bool b_fired = false;
  EventHandle b = sim.schedule_at(6.0, [&b_fired] { b_fired = true; });
  // `a`'s slot was recycled for `b`; the spent handle must not touch it.
  EXPECT_FALSE(a.pending());
  EXPECT_FALSE(a.cancel());
  sim.run_until();
  EXPECT_TRUE(b_fired);
}

TEST(SimulationArena, ReserveEventsPreservesBehaviour) {
  // Pre-reserving must not change dispatch order relative to organic
  // growth (slots come off the free list in the same order).
  auto run = [](bool reserve) {
    Simulation sim;
    if (reserve) sim.reserve_events(512);
    std::vector<int> order;
    for (int i = 0; i < 300; ++i) {
      sim.schedule_at(static_cast<double>(i % 7), [&order, i] {
        order.push_back(i);
      });
    }
    sim.run_until();
    return order;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(SimulationStress, PeriodicSeriesSurviveHeavyChurn) {
  // A periodic series keeps its cadence while 50k one-shots come and go
  // around it, and its handle stays valid (same slot, re-armed in place).
  Simulation sim;
  util::Rng rng(23);
  int ticks = 0;
  EventHandle series = sim.schedule_periodic(0.5, 1.0, [&ticks](SimTime) {
    ++ticks;
    return true;
  });
  for (int i = 0; i < 50'000; ++i) {
    sim.schedule_at(sim.now() + rng.uniform(0.0, 2.0), [] {});
    if (i % 2 == 0) sim.step();
  }
  sim.run_until(1000.0);
  EXPECT_TRUE(series.pending());  // still armed for its next occurrence
  EXPECT_EQ(ticks, 1000);
  EXPECT_TRUE(series.cancel());
  const auto processed = sim.processed_events();
  sim.run_until(1001.5);
  EXPECT_EQ(sim.processed_events(), processed);  // series really stopped
}

}  // namespace
}  // namespace hcmd::sim
