#include "volunteer/diurnal.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/duration.hpp"
#include "util/stats.hpp"
#include "volunteer/device.hpp"

namespace hcmd::volunteer {
namespace {

using util::kSecondsPerHour;

TEST(Diurnal, FlatProfileIsConstantOne) {
  DiurnalProfile p;
  for (double h = 0.0; h < 24.0; h += 0.5)
    EXPECT_DOUBLE_EQ(p.weight(h * kSecondsPerHour), 1.0);
  EXPECT_DOUBLE_EQ(p.mean_weight(), 1.0);
}

TEST(Diurnal, EveningProfilePeaksInTheEvening) {
  DiurnalProfile p;
  p.cls = DiurnalClass::kEveningHome;
  EXPECT_DOUBLE_EQ(p.weight(20.0 * kSecondsPerHour), 1.0);   // 8 pm
  EXPECT_LT(p.weight(12.0 * kSecondsPerHour), 0.5);          // noon
  EXPECT_LT(p.weight(4.0 * kSecondsPerHour), 0.2);           // 4 am
}

TEST(Diurnal, OfficeProfilePeaksDaytime) {
  DiurnalProfile p;
  p.cls = DiurnalClass::kOfficeDay;
  EXPECT_DOUBLE_EQ(p.weight(10.0 * kSecondsPerHour), 1.0);
  EXPECT_LT(p.weight(22.0 * kSecondsPerHour), 0.5);
}

TEST(Diurnal, TimezoneShiftsTheProfile) {
  DiurnalProfile utc, shifted;
  utc.cls = shifted.cls = DiurnalClass::kEveningHome;
  shifted.timezone_offset_hours = -8.0;  // US Pacific
  // 20:00 local for the shifted profile is 04:00 simulation time + 24h wrap.
  EXPECT_DOUBLE_EQ(shifted.weight(28.0 * kSecondsPerHour),
                   utc.weight(20.0 * kSecondsPerHour));
}

TEST(Diurnal, MeanWeightMatchesNumericalAverage) {
  for (DiurnalClass cls : {DiurnalClass::kFlat, DiurnalClass::kEveningHome,
                           DiurnalClass::kOfficeDay}) {
    DiurnalProfile p;
    p.cls = cls;
    double sum = 0.0;
    const int steps = 24 * 60;
    for (int i = 0; i < steps; ++i)
      sum += p.weight((static_cast<double>(i) / 60.0) * kSecondsPerHour);
    EXPECT_NEAR(sum / steps, p.mean_weight(), 1e-9);
  }
}

TEST(Diurnal, FlatSamplingMatchesExponential) {
  util::Rng a(5), b(5);
  DiurnalProfile flat;
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(
        sample_reattach_delay(0.0, 3600.0, flat, a),
        b.exponential(3600.0));
  }
}

TEST(Diurnal, SamplingPreservesMeanDelay) {
  // The thinning construction renormalises by mean_weight, so the long-run
  // average off period is unchanged across profiles.
  for (DiurnalClass cls : {DiurnalClass::kEveningHome,
                           DiurnalClass::kOfficeDay}) {
    DiurnalProfile p;
    p.cls = cls;
    util::Rng rng(static_cast<std::uint64_t>(cls) + 17);
    util::OnlineStats stats;
    double t = 0.0;
    for (int i = 0; i < 60000; ++i) {
      const double d = sample_reattach_delay(t, 8.0 * kSecondsPerHour, p,
                                             rng);
      stats.add(d);
      t += d + 1800.0;  // short on period
    }
    EXPECT_NEAR(stats.mean(), 8.0 * kSecondsPerHour,
                0.05 * 8.0 * kSecondsPerHour);
  }
}

TEST(Diurnal, ReattachesConcentrateInTheProfileWindow) {
  DiurnalProfile p;
  p.cls = DiurnalClass::kEveningHome;
  util::Rng rng(31);
  int evening = 0, total = 0;
  double t = 0.0;
  for (int i = 0; i < 40000; ++i) {
    t += sample_reattach_delay(t, 6.0 * kSecondsPerHour, p, rng);
    const double hour = std::fmod(t / kSecondsPerHour, 24.0);
    if (hour >= 17.0 || hour < 1.0) ++evening;
    ++total;
    t += 600.0;
  }
  // The evening window is 8/24 = 33 % of the day but captures well over
  // half of the attach events.
  EXPECT_GT(static_cast<double>(evening) / total, 0.5);
}

TEST(Diurnal, DrawProfileRespectsFractions) {
  util::Rng rng(41);
  int evening = 0, office = 0, flat = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const DiurnalProfile p = draw_profile(rng, 0.5, 0.3);
    switch (p.cls) {
      case DiurnalClass::kEveningHome: ++evening; break;
      case DiurnalClass::kOfficeDay: ++office; break;
      case DiurnalClass::kFlat: ++flat; break;
    }
  }
  EXPECT_NEAR(static_cast<double>(evening) / n, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(office) / n, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(flat) / n, 0.2, 0.02);
}

TEST(Diurnal, DrawProfileRejectsBadFractions) {
  util::Rng rng(43);
  EXPECT_THROW(draw_profile(rng, 0.8, 0.5), std::logic_error);
}

TEST(Diurnal, DeviceGenerationAssignsProfilesWhenEnabled) {
  util::Rng rng(47);
  DeviceParams params;
  params.diurnal_enabled = true;
  params.always_on_fraction = 0.0;  // every device interactive
  int profiled = 0;
  for (int i = 0; i < 2000; ++i) {
    const DeviceSpec d =
        make_device(static_cast<std::uint32_t>(i), 0.0, 2.0, rng, params);
    if (d.diurnal.cls != DiurnalClass::kFlat) ++profiled;
  }
  EXPECT_GT(profiled, 1000);  // evening + office fractions sum to 0.8
}

TEST(Diurnal, DisabledByDefault) {
  util::Rng rng(53);
  const DeviceParams params;
  const DeviceSpec d = make_device(0, 0.0, 2.0, rng, params);
  EXPECT_EQ(d.diurnal.cls, DiurnalClass::kFlat);
}

}  // namespace
}  // namespace hcmd::volunteer
