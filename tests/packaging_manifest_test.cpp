#include "packaging/manifest.hpp"
#include "packaging/packager.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "timing/mct_matrix.hpp"
#include "util/error.hpp"

namespace hcmd::packaging {
namespace {

struct Fixture {
  proteins::Benchmark bench;
  std::vector<Workunit> catalog;

  Fixture() {
    proteins::BenchmarkSpec spec;
    spec.count = 5;
    spec.target_total_nsep = 0;
    spec.outlier_nsep_target = 0;
    bench = proteins::generate_benchmark(spec);
    const auto mct = timing::MctMatrix::from_model(
        bench, timing::CostModel::calibrated(bench, 400.0));
    PackagingConfig cfg;
    cfg.target_hours = 2.0;
    catalog = build_catalog(bench, mct, cfg);
  }
};

TEST(Manifest, BuildValidateRoundTrip) {
  Fixture f;
  const WorkunitManifest m = make_manifest(f.bench, f.catalog.front());
  EXPECT_NO_THROW(m.validate());

  std::stringstream ss;
  m.write(ss);
  const WorkunitManifest n = WorkunitManifest::read(ss);
  EXPECT_EQ(n.workunit.id, m.workunit.id);
  EXPECT_EQ(n.workunit.isep_begin, m.workunit.isep_begin);
  EXPECT_EQ(n.workunit.isep_end, m.workunit.isep_end);
  EXPECT_EQ(n.receptor, m.receptor);
  EXPECT_EQ(n.ligand, m.ligand);
  EXPECT_DOUBLE_EQ(n.position_params.spacing, m.position_params.spacing);
  EXPECT_NO_THROW(n.validate());
}

TEST(Manifest, EveryWorkunitRespectsTheSizeBound) {
  Fixture f;
  for (std::size_t i = 0; i < f.catalog.size(); i += 7) {
    const WorkunitManifest m = make_manifest(f.bench, f.catalog[i]);
    EXPECT_LE(m.byte_size(), kMaxManifestBytes);
    EXPECT_NO_THROW(m.validate());
  }
}

TEST(Manifest, WorstCaseProteinsStillUnder2MB) {
  // Even two maximum-size proteins fit the paper's 2 MB bound.
  proteins::BenchmarkSpec spec;
  spec.count = 2;
  spec.median_atoms = 3000;
  spec.min_atoms = 3000;
  spec.max_atoms = 3000;
  spec.target_total_nsep = 0;
  spec.outlier_nsep_target = 0;
  const auto bench = proteins::generate_benchmark(spec);
  Workunit wu;
  wu.receptor = 0;
  wu.ligand = 1;
  wu.isep_begin = 0;
  wu.isep_end = 1;
  const WorkunitManifest m = make_manifest(bench, wu);
  EXPECT_LE(m.byte_size(), kMaxManifestBytes);
}

TEST(Manifest, ValidateCatchesMismatchedIds) {
  Fixture f;
  WorkunitManifest m = make_manifest(f.bench, f.catalog.front());
  m.workunit.receptor += 1;  // now inconsistent with the embedded protein
  EXPECT_THROW(m.validate(), hcmd::Error);
}

TEST(Manifest, ValidateCatchesOverlongSlice) {
  Fixture f;
  WorkunitManifest m = make_manifest(f.bench, f.catalog.front());
  m.workunit.isep_end = 10'000'000;
  EXPECT_THROW(m.validate(), hcmd::Error);
}

TEST(Manifest, ReadRejectsGarbage) {
  std::stringstream ss("not-a-manifest");
  EXPECT_THROW(WorkunitManifest::read(ss), hcmd::ParseError);
}

TEST(Manifest, MakeRejectsUnknownProteins) {
  Fixture f;
  Workunit wu;
  wu.receptor = 99;
  EXPECT_THROW(make_manifest(f.bench, wu), hcmd::ConfigError);
}

}  // namespace
}  // namespace hcmd::packaging
