#include "docking/maxdo.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "proteins/generator.hpp"
#include "util/error.hpp"

namespace hcmd::docking {
namespace {

using proteins::ReducedProtein;

/// Small proteins + tiny minimiser budget keep the tests fast while still
/// exercising the whole pipeline.
struct Fixture {
  ReducedProtein receptor = proteins::generate_protein(1, 25, 1.0, 21);
  ReducedProtein ligand = proteins::generate_protein(2, 20, 1.1, 22);
  MaxDoParams params;

  Fixture() {
    params.minimizer.max_iterations = 4;
    params.gamma_steps = 2;
    params.positions.spacing = 12.0;  // few starting positions
  }
};

TEST(MaxDo, CompletesTaskAndFillsRecords) {
  Fixture f;
  MaxDoProgram program(f.receptor, f.ligand, f.params);
  MaxDoTask task;
  task.isep_begin = 0;
  task.isep_end = 3;
  MaxDoCheckpoint cp;
  EXPECT_EQ(program.run(task, cp), RunStatus::kCompleted);
  EXPECT_EQ(cp.next_isep, 3u);
  EXPECT_EQ(cp.records.size(), 3u * proteins::kNumRotationCouples);
  // Records ordered by (isep, irot).
  for (std::size_t i = 0; i < cp.records.size(); ++i) {
    EXPECT_EQ(cp.records[i].isep, i / proteins::kNumRotationCouples);
    EXPECT_EQ(cp.records[i].irot, i % proteins::kNumRotationCouples);
  }
}

TEST(MaxDo, RecordsCarryFiniteEnergies) {
  Fixture f;
  MaxDoProgram program(f.receptor, f.ligand, f.params);
  MaxDoTask task{0, 2, 0, 5};
  MaxDoCheckpoint cp;
  program.run(task, cp);
  for (const auto& r : cp.records) {
    EXPECT_TRUE(std::isfinite(r.elj));
    EXPECT_TRUE(std::isfinite(r.eelec));
    EXPECT_DOUBLE_EQ(r.etot(), r.elj + r.eelec);
  }
}

TEST(MaxDo, ReproducibleAcrossPrograms) {
  Fixture f;
  MaxDoTask task{0, 2, 0, 4};
  MaxDoCheckpoint a, b;
  MaxDoProgram(f.receptor, f.ligand, f.params).run(task, a);
  MaxDoProgram(f.receptor, f.ligand, f.params).run(task, b);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].elj, b.records[i].elj);
    EXPECT_EQ(a.records[i].eelec, b.records[i].eelec);
  }
}

TEST(MaxDo, ReproducibleWork) {
  // Property 1 of Section 4.1: reproducible computing time — the work
  // counter is a pure function of the task.
  Fixture f;
  MaxDoTask task{0, 2, 0, 6};
  MaxDoCheckpoint a, b;
  MaxDoProgram p1(f.receptor, f.ligand, f.params);
  MaxDoProgram p2(f.receptor, f.ligand, f.params);
  p1.run(task, a);
  p2.run(task, b);
  EXPECT_EQ(p1.work().evaluations, p2.work().evaluations);
  EXPECT_EQ(p1.work().pair_terms, p2.work().pair_terms);
}

TEST(MaxDo, InterruptionBetweenPositionsPreservesPrefix) {
  Fixture f;
  MaxDoTask task{0, 4, 0, 3};
  MaxDoCheckpoint cp;
  MaxDoProgram program(f.receptor, f.ligand, f.params);
  int positions_done = 0;
  const RunStatus status = program.run(task, cp, [&positions_done] {
    return ++positions_done >= 2;  // interrupt after the 2nd position
  });
  EXPECT_EQ(status, RunStatus::kInterrupted);
  EXPECT_EQ(cp.next_isep, 2u);
  EXPECT_EQ(cp.records.size(), 2u * 3u);
}

TEST(MaxDo, ResumeFromCheckpointMatchesUninterrupted) {
  Fixture f;
  MaxDoTask task{0, 4, 0, 3};

  MaxDoCheckpoint full;
  MaxDoProgram(f.receptor, f.ligand, f.params).run(task, full);

  MaxDoCheckpoint resumed;
  MaxDoProgram program(f.receptor, f.ligand, f.params);
  int count = 0;
  program.run(task, resumed, [&count] { return ++count >= 1; });
  ASSERT_LT(resumed.next_isep, 4u);
  EXPECT_EQ(program.run(task, resumed), RunStatus::kCompleted);

  ASSERT_EQ(resumed.records.size(), full.records.size());
  for (std::size_t i = 0; i < full.records.size(); ++i) {
    EXPECT_EQ(resumed.records[i].elj, full.records[i].elj);
    EXPECT_EQ(resumed.records[i].isep, full.records[i].isep);
  }
}

TEST(MaxDo, CheckpointSerializationRoundTrip) {
  Fixture f;
  MaxDoTask task{0, 2, 0, 4};
  MaxDoCheckpoint cp;
  MaxDoProgram(f.receptor, f.ligand, f.params).run(task, cp);
  std::stringstream ss;
  cp.write(ss);
  const MaxDoCheckpoint restored = MaxDoCheckpoint::read(ss);
  EXPECT_EQ(restored.next_isep, cp.next_isep);
  ASSERT_EQ(restored.records.size(), cp.records.size());
  for (std::size_t i = 0; i < cp.records.size(); ++i) {
    EXPECT_EQ(restored.records[i].isep, cp.records[i].isep);
    EXPECT_EQ(restored.records[i].irot, cp.records[i].irot);
    EXPECT_EQ(restored.records[i].elj, cp.records[i].elj);
  }
}

TEST(MaxDo, CheckpointReadRejectsGarbage) {
  std::stringstream ss("bogus");
  EXPECT_THROW(MaxDoCheckpoint::read(ss), hcmd::ParseError);
  std::stringstream v2("maxdo-checkpoint 9 0 0\n");
  EXPECT_THROW(MaxDoCheckpoint::read(v2), hcmd::ParseError);
}

TEST(MaxDo, RejectsOutOfRangeTask) {
  Fixture f;
  MaxDoProgram program(f.receptor, f.ligand, f.params);
  MaxDoCheckpoint cp;
  MaxDoTask bad;
  bad.isep_begin = 0;
  bad.isep_end = program.nsep() + 1;
  EXPECT_THROW(program.run(bad, cp), hcmd::ConfigError);
  MaxDoTask bad_rot{0, 1, 0, 22};
  EXPECT_THROW(program.run(bad_rot, cp), hcmd::ConfigError);
}

TEST(MaxDo, GammaRefinementPicksBest) {
  // With more gamma starts the per-(isep, irot) best can only improve.
  Fixture f;
  MaxDoTask task{0, 1, 0, 4};
  MaxDoCheckpoint one_gamma, two_gamma;
  MaxDoParams p1 = f.params;
  p1.gamma_steps = 1;
  MaxDoParams p2 = f.params;
  p2.gamma_steps = 2;
  MaxDoProgram(f.receptor, f.ligand, p1).run(task, one_gamma);
  MaxDoProgram(f.receptor, f.ligand, p2).run(task, two_gamma);
  ASSERT_EQ(one_gamma.records.size(), two_gamma.records.size());
  for (std::size_t i = 0; i < one_gamma.records.size(); ++i)
    EXPECT_LE(two_gamma.records[i].etot(), one_gamma.records[i].etot() + 1e-9);
}

TEST(MaxDo, NsepMatchesStartingPositions) {
  Fixture f;
  MaxDoProgram program(f.receptor, f.ligand, f.params);
  EXPECT_EQ(program.nsep(),
            proteins::nsep_for(f.receptor, f.params.positions));
}

}  // namespace
}  // namespace hcmd::docking
