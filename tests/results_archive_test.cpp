#include "results/archive.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hcmd::results {
namespace {

docking::DockingRecord rec(std::uint32_t isep, std::uint32_t irot) {
  docking::DockingRecord r;
  r.isep = isep;
  r.irot = irot;
  r.pose.x = 20.0;
  r.elj = -1.0;
  r.eelec = -0.5;
  return r;
}

ResultFile slice(std::uint32_t receptor, std::uint32_t ligand,
                 std::uint32_t begin, std::uint32_t end) {
  ResultFile f;
  f.receptor = receptor;
  f.ligand = ligand;
  f.isep_begin = begin;
  f.isep_end = end;
  for (std::uint32_t s = begin; s < end; ++s)
    for (std::uint32_t r = 0; r < proteins::kNumRotationCouples; ++r)
      f.records.push_back(rec(s, r));
  return f;
}

/// 3 proteins, Nsep = {4, 6, 2}.
Archive make_archive() { return Archive(3, {4, 6, 2}); }

TEST(Archive, RejectsBadConstruction) {
  EXPECT_THROW(Archive(0, {}), hcmd::ConfigError);
  EXPECT_THROW(Archive(3, {1, 2}), hcmd::ConfigError);
}

TEST(Archive, DepositRejectsOutOfRange) {
  Archive archive = make_archive();
  EXPECT_THROW(archive.deposit(slice(5, 0, 0, 1)), hcmd::ConfigError);
  EXPECT_THROW(archive.deposit(slice(0, 0, 0, 9)), hcmd::ConfigError);
}

TEST(Archive, DeliveryCompletesWhenAllLigandsCovered) {
  Archive archive = make_archive();
  // Receptor 0 (Nsep 4) against ligands 0..2, two slices each.
  std::optional<std::uint32_t> done;
  for (std::uint32_t ligand = 0; ligand < 3; ++ligand) {
    EXPECT_FALSE(archive.receptor_complete(0));
    done = archive.deposit(slice(0, ligand, 0, 2));
    EXPECT_FALSE(done.has_value());
    done = archive.deposit(slice(0, ligand, 2, 4));
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(*done, 0u);
  EXPECT_TRUE(archive.receptor_complete(0));
  EXPECT_FALSE(archive.receptor_complete(1));
}

TEST(Archive, VerifyAndMergeProducesCoupleFiles) {
  Archive archive = make_archive();
  for (std::uint32_t ligand = 0; ligand < 3; ++ligand) {
    archive.deposit(slice(0, ligand, 2, 4));  // out of order on purpose
    archive.deposit(slice(0, ligand, 0, 2));
  }
  const CheckReport report = archive.verify_and_merge(0);
  EXPECT_TRUE(report.ok);
  for (std::uint32_t ligand = 0; ligand < 3; ++ligand) {
    const ResultFile* merged = archive.merged_file(0, ligand);
    ASSERT_NE(merged, nullptr);
    EXPECT_EQ(merged->isep_begin, 0u);
    EXPECT_EQ(merged->isep_end, 4u);
    EXPECT_EQ(merged->records.size(), merged->expected_lines());
    // Sorted by (isep, irot).
    EXPECT_EQ(merged->records.front().isep, 0u);
    EXPECT_EQ(merged->records.back().isep, 3u);
  }
  EXPECT_EQ(archive.stats().deliveries_verified, 1u);
  EXPECT_EQ(archive.stats().couples_merged, 3u);
  EXPECT_GT(archive.stats().merged_bytes, 0u);
}

TEST(Archive, VerifyFailsOnIncompleteDelivery) {
  Archive archive = make_archive();
  archive.deposit(slice(0, 0, 0, 4));
  const CheckReport report = archive.verify_and_merge(0);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(archive.stats().deliveries_failed, 1u);
}

TEST(Archive, VerifyCatchesCorruptValues) {
  Archive archive = make_archive();
  for (std::uint32_t ligand = 0; ligand < 3; ++ligand) {
    ResultFile f = slice(0, ligand, 0, 4);
    if (ligand == 1) f.records[3].elj = 1e9;  // out of physical range
    archive.deposit(std::move(f));
  }
  const CheckReport report = archive.verify_and_merge(0);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(archive.stats().deliveries_failed, 1u);
}

TEST(Archive, OverlappingSlicesRejectedAtMerge) {
  Archive archive = make_archive();
  archive.deposit(slice(2, 0, 0, 2));
  archive.deposit(slice(2, 0, 1, 2));  // overlap
  archive.deposit(slice(2, 1, 0, 2));
  archive.deposit(slice(2, 2, 0, 2));
  // Coverage counting says complete (3 positions counted for Nsep 2), but
  // the merge detects the overlap.
  const CheckReport report = archive.verify_and_merge(2);
  EXPECT_FALSE(report.ok);
}

TEST(Archive, StatsTrackBytes) {
  Archive archive = make_archive();
  const ResultFile f = slice(1, 0, 0, 6);
  const std::uint64_t bytes = f.byte_size();
  archive.deposit(f);
  EXPECT_EQ(archive.stats().files_received, 1u);
  EXPECT_EQ(archive.stats().bytes_received, bytes);
}

}  // namespace
}  // namespace hcmd::results
