#include "packaging/packager.hpp"

#include <gtest/gtest.h>

#include "util/duration.hpp"
#include "util/error.hpp"

namespace hcmd::packaging {
namespace {

const proteins::Benchmark& paper_benchmark() {
  static const proteins::Benchmark bench = proteins::generate_benchmark({});
  return bench;
}

const timing::MctMatrix& paper_matrix() {
  static const timing::MctMatrix mct = timing::MctMatrix::from_model(
      paper_benchmark(), timing::CostModel::calibrated(paper_benchmark()));
  return mct;
}

TEST(PositionsPerWorkunit, PaperFormulaBranches) {
  // nsep = 1 when floor(h / Mct) <= 1.
  EXPECT_EQ(positions_per_workunit(10.0, 11.0 * 3600.0, 500,
                                   SplitStrategy::kPaperFloor),
            1u);
  EXPECT_EQ(positions_per_workunit(10.0, 6.0 * 3600.0, 500,
                                   SplitStrategy::kPaperFloor),
            1u);
  // nsep = Nsep when floor(h / Mct) >= Nsep.
  EXPECT_EQ(positions_per_workunit(10.0, 36.0, 500,
                                   SplitStrategy::kPaperFloor),
            500u);
  // Otherwise nsep = floor(h / Mct).
  EXPECT_EQ(positions_per_workunit(10.0, 3600.0, 500,
                                   SplitStrategy::kPaperFloor),
            10u);
  EXPECT_EQ(positions_per_workunit(10.0, 3601.0, 500,
                                   SplitStrategy::kPaperFloor),
            9u);
}

TEST(PositionsPerWorkunit, MinimizeCountUsesCeil) {
  EXPECT_EQ(positions_per_workunit(10.0, 3601.0, 500,
                                   SplitStrategy::kMinimizeCount),
            10u);
}

TEST(PositionsPerWorkunit, RejectsBadInputs) {
  EXPECT_THROW(
      positions_per_workunit(0.0, 100.0, 10, SplitStrategy::kPaperFloor),
      hcmd::ConfigError);
  EXPECT_THROW(
      positions_per_workunit(1.0, 0.0, 10, SplitStrategy::kPaperFloor),
      hcmd::ConfigError);
  EXPECT_THROW(
      positions_per_workunit(1.0, 100.0, 0, SplitStrategy::kPaperFloor),
      hcmd::ConfigError);
}

TEST(Packaging, EveryPositionCoveredExactlyOnce) {
  proteins::BenchmarkSpec spec;
  spec.count = 6;
  spec.target_total_nsep = 0;
  spec.outlier_nsep_target = 0;
  const auto bench = proteins::generate_benchmark(spec);
  const auto mct = timing::MctMatrix::from_model(
      bench, timing::CostModel::calibrated(bench, 671.0));
  PackagingConfig cfg;
  cfg.target_hours = 2.0;

  // coverage[receptor][ligand] -> positions seen
  std::vector<std::vector<std::uint64_t>> covered(
      6, std::vector<std::uint64_t>(6, 0));
  std::uint32_t last_receptor = 0;
  for_each_workunit(bench, mct, cfg, [&](const Workunit& wu) {
    EXPECT_GE(wu.receptor, last_receptor);  // receptor-major order
    last_receptor = wu.receptor;
    EXPECT_LT(wu.isep_begin, wu.isep_end);
    EXPECT_LE(wu.isep_end, bench.nsep[wu.receptor]);
    covered[wu.receptor][wu.ligand] += wu.positions();
    EXPECT_NEAR(wu.reference_seconds,
                wu.positions() * mct.at(wu.receptor, wu.ligand), 1e-9);
  });
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t l = 0; l < 6; ++l)
      EXPECT_EQ(covered[r][l], bench.nsep[r]) << r << "," << l;
}

TEST(Packaging, Figure4aCountAt10Hours) {
  // Fig. 4(a): 10-hour workunits -> 1,364,476 of them.
  PackagingConfig cfg;
  cfg.target_hours = 10.0;
  const PackagingStats stats =
      compute_stats(paper_benchmark(), paper_matrix(), cfg);
  EXPECT_NEAR(static_cast<double>(stats.workunit_count), 1'364'476.0,
              0.06 * 1'364'476.0);
}

TEST(Packaging, Figure4bCountAt4Hours) {
  // Fig. 4(b): 4-hour workunits -> 3,599,937 of them.
  PackagingConfig cfg;
  cfg.target_hours = 4.0;
  const PackagingStats stats =
      compute_stats(paper_benchmark(), paper_matrix(), cfg);
  EXPECT_NEAR(static_cast<double>(stats.workunit_count), 3'599'937.0,
              0.06 * 3'599'937.0);
}

TEST(Packaging, CountIncreasesAsTargetShrinks) {
  // "the number of workunits increases when the workunit execution time
  // wanted decreases".
  std::uint64_t prev = 0;
  for (double h : {16.0, 10.0, 6.0, 4.0}) {
    PackagingConfig cfg;
    cfg.target_hours = h;
    const auto stats = compute_stats(paper_benchmark(), paper_matrix(), cfg);
    EXPECT_GT(stats.workunit_count, prev);
    prev = stats.workunit_count;
  }
}

TEST(Packaging, TotalReferenceSecondsInvariantAcrossH) {
  PackagingConfig a, b;
  a.target_hours = 10.0;
  b.target_hours = 4.0;
  const auto sa = compute_stats(paper_benchmark(), paper_matrix(), a);
  const auto sb = compute_stats(paper_benchmark(), paper_matrix(), b);
  EXPECT_NEAR(sa.total_reference_seconds, sb.total_reference_seconds,
              1e-6 * sa.total_reference_seconds);
  EXPECT_NEAR(sa.total_reference_seconds,
              paper_matrix().total_reference_seconds(paper_benchmark()),
              1e-6 * sa.total_reference_seconds);
}

TEST(Packaging, MostWorkunitsNearTarget) {
  PackagingConfig cfg;
  cfg.target_hours = 4.0;
  const auto stats = compute_stats(paper_benchmark(), paper_matrix(), cfg);
  // Fig. 8: "most workunits were tuned to take between 3 and 4 hours";
  // mean 3 h 18 m 47 s.
  EXPECT_GT(stats.mean_reference_seconds, 2.5 * util::kSecondsPerHour);
  EXPECT_LT(stats.mean_reference_seconds, 4.5 * util::kSecondsPerHour);
}

TEST(Packaging, BalancedStrategyShrinksSmallWorkunits) {
  PackagingConfig paper, balanced;
  paper.target_hours = 10.0;
  balanced.target_hours = 10.0;
  balanced.strategy = SplitStrategy::kBalanced;
  const auto sp = compute_stats(paper_benchmark(), paper_matrix(), paper);
  const auto sb = compute_stats(paper_benchmark(), paper_matrix(), balanced);
  EXPECT_EQ(sp.workunit_count, sb.workunit_count);  // same chunk counts
  EXPECT_LE(sb.small_workunits, sp.small_workunits);
}

TEST(Packaging, MinimizeCountNeverExceedsPaperCount) {
  PackagingConfig paper, minimal;
  paper.target_hours = 10.0;
  minimal.target_hours = 10.0;
  minimal.strategy = SplitStrategy::kMinimizeCount;
  const auto sp = compute_stats(paper_benchmark(), paper_matrix(), paper);
  const auto sm = compute_stats(paper_benchmark(), paper_matrix(), minimal);
  EXPECT_LE(sm.workunit_count, sp.workunit_count);
}

TEST(Packaging, CatalogStrideSamples) {
  proteins::BenchmarkSpec spec;
  spec.count = 6;
  spec.target_total_nsep = 0;
  spec.outlier_nsep_target = 0;
  const auto bench = proteins::generate_benchmark(spec);
  const auto mct = timing::MctMatrix::from_model(
      bench, timing::CostModel::calibrated(bench, 300.0));
  PackagingConfig cfg;
  cfg.target_hours = 2.0;
  const auto all = build_catalog(bench, mct, cfg, 1);
  const auto sampled = build_catalog(bench, mct, cfg, 10);
  EXPECT_EQ(sampled.size(), (all.size() + 9) / 10);
  for (const auto& wu : sampled) EXPECT_EQ(wu.id % 10, 0u);
}

TEST(Packaging, CatalogRejectsZeroStride) {
  EXPECT_THROW(
      build_catalog(paper_benchmark(), paper_matrix(), PackagingConfig{}, 0),
      hcmd::ConfigError);
}

TEST(Workunit, DownloadSizeWithinPaperBound) {
  // "The data needed for the MAXDo program is small ... no more than 2 Mo".
  const double bytes = workunit_download_bytes(3000, 3000);
  EXPECT_LT(bytes, 2e6);
  EXPECT_GT(bytes, 4096.0);
}

TEST(Workunit, ResultBytesScaleWithPositions) {
  Workunit wu;
  wu.isep_begin = 0;
  wu.isep_end = 10;
  const double b10 = workunit_result_bytes(wu);
  wu.isep_end = 20;
  EXPECT_DOUBLE_EQ(workunit_result_bytes(wu), 2.0 * b10);
}

class StrategySweep : public ::testing::TestWithParam<SplitStrategy> {};

TEST_P(StrategySweep, CoverageInvariantHolds) {
  proteins::BenchmarkSpec spec;
  spec.count = 5;
  spec.target_total_nsep = 0;
  spec.outlier_nsep_target = 0;
  const auto bench = proteins::generate_benchmark(spec);
  const auto mct = timing::MctMatrix::from_model(
      bench, timing::CostModel::calibrated(bench, 500.0));
  PackagingConfig cfg;
  cfg.target_hours = 3.0;
  cfg.strategy = GetParam();
  std::uint64_t positions = 0;
  for_each_workunit(bench, mct, cfg,
                    [&](const Workunit& wu) { positions += wu.positions(); });
  EXPECT_EQ(positions, bench.total_nsep() * bench.proteins.size());
}

INSTANTIATE_TEST_SUITE_P(Strategies, StrategySweep,
                         ::testing::Values(SplitStrategy::kPaperFloor,
                                           SplitStrategy::kBalanced,
                                           SplitStrategy::kMinimizeCount));

}  // namespace
}  // namespace hcmd::packaging
