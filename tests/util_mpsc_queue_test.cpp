// util::MpscQueue: FIFO-per-producer ordering, multi-producer stress (the
// TSan job runs this suite), and drain-order determinism under the
// (time, lane, key) merge the grid service applies to drained batches.
#include "util/mpsc_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "server/merge_order.hpp"

namespace {

using hcmd::util::MpscQueue;

TEST(MpscQueue, StartsEmpty) {
  MpscQueue<int> q;
  EXPECT_TRUE(q.empty());
  int v = 0;
  EXPECT_FALSE(q.pop(v));
}

TEST(MpscQueue, SingleThreadFifo) {
  MpscQueue<int> q;
  for (int i = 0; i < 100; ++i) q.push(i);
  EXPECT_FALSE(q.empty());
  for (int i = 0; i < 100; ++i) {
    int v = -1;
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(MpscQueue, DrainMovesEverything) {
  MpscQueue<std::uint64_t> q;
  for (std::uint64_t i = 0; i < 1000; ++i) q.push(i);
  std::vector<std::uint64_t> out;
  EXPECT_EQ(q.drain(out), 1000u);
  EXPECT_EQ(out.size(), 1000u);
  EXPECT_TRUE(q.empty());
  for (std::uint64_t i = 0; i < 1000; ++i) EXPECT_EQ(out[i], i);
}

TEST(MpscQueue, MoveOnlyPayload) {
  MpscQueue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(42));
  std::unique_ptr<int> v;
  ASSERT_TRUE(q.pop(v));
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 42);
}

TEST(MpscQueue, DestructorReclaimsUndrainedEntries) {
  // Leak-checked by ASan builds: entries still queued when the queue dies
  // must be freed.
  MpscQueue<std::unique_ptr<int>> q;
  for (int i = 0; i < 64; ++i) q.push(std::make_unique<int>(i));
}

struct Tagged {
  std::uint32_t producer = 0;
  std::uint64_t seq = 0;
};

// Many producers hammer one consumer; per-producer FIFO must hold even
// though the global interleaving is arbitrary. This is the test the TSan CI
// job leans on to vet the acquire/release pairing.
TEST(MpscQueue, MultiProducerStressKeepsPerProducerFifo) {
  constexpr std::uint32_t kProducers = 8;
  constexpr std::uint64_t kPerProducer = 20000;

  MpscQueue<Tagged> q;
  std::atomic<std::uint32_t> started{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &started, p] {
      started.fetch_add(1);
      while (started.load() < kProducers) {
      }  // release the herd together
      for (std::uint64_t i = 0; i < kPerProducer; ++i) q.push(Tagged{p, i});
    });
  }

  // Consume concurrently with the producers (the service-thread pattern),
  // tolerating the Vyukov empty window by polling until the count is in.
  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t received = 0;
  Tagged t;
  while (received < kProducers * kPerProducer) {
    if (!q.pop(t)) continue;
    ASSERT_LT(t.producer, kProducers);
    EXPECT_EQ(t.seq, next_seq[t.producer])
        << "producer " << t.producer << " reordered";
    ++next_seq[t.producer];
    ++received;
  }
  for (auto& th : producers) th.join();
  EXPECT_TRUE(q.empty());
}

// The service contract: drained batches are re-sorted into the (time, lane,
// device, seq) merge order, so the total order is a function of the stamps
// alone — any producer interleaving yields the same replay sequence.
TEST(MpscQueue, DrainThenMergeSortIsDeterministic) {
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;

  auto run_once = [&] {
    MpscQueue<hcmd::server::MergeKey> q;
    std::vector<std::thread> producers;
    for (std::uint32_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&q, p] {
        for (std::uint64_t i = 0; i < kPerProducer; ++i) {
          // Device gid == producer, per-device monotone seq, coarse time
          // stamps that collide across producers to exercise tie-breaks.
          q.push(hcmd::server::MergeKey{static_cast<double>(i / 16),
                                        hcmd::server::MergeLane::kMessage, p,
                                        i});
        }
      });
    }
    for (auto& th : producers) th.join();
    std::vector<hcmd::server::MergeKey> batch;
    q.drain(batch);
    std::sort(batch.begin(), batch.end(),
              [](const hcmd::server::MergeKey& a,
                 const hcmd::server::MergeKey& b) {
                return hcmd::server::merge_before(a, b);
              });
    return batch;
  };

  const std::vector<hcmd::server::MergeKey> a = run_once();
  const std::vector<hcmd::server::MergeKey> b = run_once();
  ASSERT_EQ(a.size(), kProducers * kPerProducer);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].gid, b[i].gid);
    EXPECT_EQ(a[i].seq, b[i].seq);
    if (i > 0) {
      EXPECT_FALSE(hcmd::server::merge_before(a[i], a[i - 1]));
    }
  }
}

}  // namespace
