// GridService: wire-mode RPC semantics over the in-process ProjectServer —
// assignment/report round trips, duplicate-report idempotency (the full
// ServerCounters snapshot is pinned), outage-window refusal with retry-after,
// deadline deferral through outages, and merge-order determinism.
#include "server/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <vector>

#include "server/protocol.hpp"
#include "util/error.hpp"

namespace {

using namespace hcmd::server;
namespace proto = hcmd::server::proto;

ServiceConfig quorum1_config() {
  ServiceConfig config;
  config.server.validation.quorum2_until = 0.0;
  config.server.validation.spot_check_fraction = 0.0;
  return config;
}

WireRequest request_work(std::uint32_t device, std::uint64_t seq, double t) {
  WireRequest m;
  m.verb = proto::Verb::kRequestWork;
  m.device = device;
  m.seq = seq;
  m.time = t;
  return m;
}

WireRequest report(std::uint32_t device, std::uint64_t seq, double t,
                   const proto::Assignment& a) {
  WireRequest m;
  m.verb = proto::Verb::kReportResult;
  m.device = device;
  m.seq = seq;
  m.time = t;
  m.result_id = a.result_id;
  m.reported_runtime = a.reference_seconds / 0.25;
  m.reference_seconds = a.reference_seconds;
  return m;
}

proto::Frame sole_frame(const WireResponse& r) {
  std::size_t off = 0;
  const std::optional<proto::Frame> f = proto::try_extract(r.bytes, off);
  EXPECT_TRUE(f.has_value());
  EXPECT_EQ(off, r.bytes.size());
  return *f;
}

bool counters_equal(const ServerCounters& a, const ServerCounters& b) {
  return std::memcmp(&a, &b, sizeof(ServerCounters)) == 0;
}

TEST(GridService, AssignmentRoundTripEchoesRouting) {
  GridService svc(synthetic_catalog(16, 4.0), quorum1_config());
  const WireResponse r = svc.handle(request_work(3, 17, 5.0));
  const proto::Assignment a = proto::decode_assignment(sole_frame(r));
  EXPECT_EQ(a.device, 3u);
  EXPECT_EQ(a.seq, 17u);
  EXPECT_EQ(a.workunit, 0u);  // catalogue order
  EXPECT_GT(a.reference_seconds, 0.0);
  EXPECT_GT(a.deadline, 5.0);
  EXPECT_EQ(svc.deadlines_armed(), 1u);
  EXPECT_EQ(svc.registry().total("rpc.assignments"), 1u);
  EXPECT_EQ(svc.rpc_requests(), 1u);
}

TEST(GridService, ReportCompletesWorkunitAndDisarmsDeadline) {
  GridService svc(synthetic_catalog(4, 4.0), quorum1_config());
  const proto::Assignment a = proto::decode_assignment(
      sole_frame(svc.handle(request_work(0, 1, 0.0))));
  ASSERT_EQ(svc.deadlines_armed(), 1u);

  const WireResponse r = svc.handle(report(0, 2, 100.0, a));
  const proto::ReportAck ack = proto::decode_report_ack(sole_frame(r));
  EXPECT_EQ(ack.state, ResultState::kValid);
  EXPECT_FALSE(ack.duplicate);
  EXPECT_EQ(svc.deadlines_armed(), 0u);
  EXPECT_EQ(svc.project().counters().workunits_completed, 1u);
}

// Satellite: a replayed report_result (network retry after a lost ack) must
// not move ANY server state — the whole counters struct is pinned.
TEST(GridService, DuplicateReportIsIdempotent) {
  GridService svc(synthetic_catalog(4, 4.0), quorum1_config());
  const proto::Assignment a = proto::decode_assignment(
      sole_frame(svc.handle(request_work(0, 1, 0.0))));

  const WireRequest first = report(0, 2, 100.0, a);
  const proto::ReportAck ack1 =
      proto::decode_report_ack(sole_frame(svc.handle(first)));
  EXPECT_EQ(ack1.state, ResultState::kValid);
  EXPECT_FALSE(ack1.duplicate);

  const ServerCounters snapshot = svc.project().counters();
  const std::uint64_t reports_before = svc.registry().total("rpc.reports");

  // The client re-sends the identical return with a fresh seq (its ack got
  // lost). The ack must carry the terminal state and the duplicate bit, and
  // the server must not double-count anything.
  WireRequest replay = first;
  replay.seq = 3;
  replay.time = 150.0;
  const proto::ReportAck ack2 =
      proto::decode_report_ack(sole_frame(svc.handle(replay)));
  EXPECT_EQ(ack2.state, ResultState::kValid);
  EXPECT_TRUE(ack2.duplicate);
  EXPECT_TRUE(counters_equal(snapshot, svc.project().counters()))
      << "a replayed return moved a server counter";
  EXPECT_EQ(svc.registry().total("rpc.duplicate_reports"), 1u);
  EXPECT_EQ(svc.registry().total("rpc.reports"), reports_before + 1);

  // And a third replay is just as inert.
  replay.seq = 4;
  replay.time = 200.0;
  const proto::ReportAck ack3 =
      proto::decode_report_ack(sole_frame(svc.handle(replay)));
  EXPECT_TRUE(ack3.duplicate);
  EXPECT_TRUE(counters_equal(snapshot, svc.project().counters()));
}

// Quorum-2 regime: the first clean result parks in kPendingValidation; a
// replay while pending must not be treated as the quorum partner.
TEST(GridService, DuplicateReportCannotFillItsOwnQuorum) {
  ServiceConfig config;  // default: quorum-2 early campaign
  GridService svc(synthetic_catalog(4, 4.0), config);
  const proto::Assignment a = proto::decode_assignment(
      sole_frame(svc.handle(request_work(0, 1, 0.0))));

  const WireRequest first = report(0, 2, 100.0, a);
  const proto::ReportAck ack1 =
      proto::decode_report_ack(sole_frame(svc.handle(first)));
  EXPECT_EQ(ack1.state, ResultState::kPendingValidation);

  const ServerCounters snapshot = svc.project().counters();
  EXPECT_EQ(snapshot.results_pending, 1u);
  EXPECT_EQ(snapshot.workunits_completed, 0u);

  WireRequest replay = first;
  replay.seq = 3;
  replay.time = 150.0;
  const proto::ReportAck ack2 =
      proto::decode_report_ack(sole_frame(svc.handle(replay)));
  EXPECT_TRUE(ack2.duplicate);
  EXPECT_EQ(ack2.state, ResultState::kPendingValidation);
  EXPECT_TRUE(counters_equal(snapshot, svc.project().counters()))
      << "a replay filled its own quorum";
}

TEST(GridService, UnknownResultAndVerbAndDeviceGetErrors) {
  ServiceConfig config = quorum1_config();
  config.max_devices = 1024;
  GridService svc(synthetic_catalog(4, 4.0), config);

  // Report for a result id never issued.
  WireRequest m;
  m.verb = proto::Verb::kReportResult;
  m.device = 1;
  m.seq = 1;
  m.result_id = 999;
  const proto::ErrorMsg e1 = proto::decode_error(sole_frame(svc.handle(m)));
  EXPECT_EQ(e1.code, proto::ErrorCode::kUnknownResult);

  // A response verb arriving as a request.
  WireRequest bad;
  bad.verb = proto::Verb::kAssignment;
  bad.device = 1;
  bad.seq = 2;
  const proto::ErrorMsg e2 = proto::decode_error(sole_frame(svc.handle(bad)));
  EXPECT_EQ(e2.code, proto::ErrorCode::kUnknownVerb);

  // A device id past the configured ceiling must not grow server state.
  const proto::ErrorMsg e3 = proto::decode_error(
      sole_frame(svc.handle(request_work(4096, 1, 0.0))));
  EXPECT_EQ(e3.code, proto::ErrorCode::kBadFrame);
  EXPECT_EQ(svc.project().counters().results_sent, 0u);
  EXPECT_EQ(svc.registry().total("rpc.errors"), 3u);
}

// Satellite: outage windows refuse issue over the wire exactly as
// in-process — explicit Busy with the window's remaining time, the same
// outage_denied counter the nullopt path bumps, and reports refused too.
TEST(GridService, OutageWindowRefusesIssueWithRetryAfter) {
  ServiceConfig config = quorum1_config();
  hcmd::faults::OutageWindow w;
  w.begin_seconds = 100.0;
  w.end_seconds = 250.0;
  config.faults.outages.push_back(w);
  GridService svc(synthetic_catalog(8, 4.0), config);

  // Before the window: work flows.
  const proto::Assignment a = proto::decode_assignment(
      sole_frame(svc.handle(request_work(0, 1, 50.0))));

  // Inside the window: issue refused with the exact remaining time.
  const proto::Busy busy = proto::decode_busy(
      sole_frame(svc.handle(request_work(1, 1, 150.0))));
  EXPECT_EQ(busy.device, 1u);
  EXPECT_DOUBLE_EQ(busy.retry_after, 100.0);  // 250 - 150
  EXPECT_EQ(svc.fault_schedule().counters().outage_denied_requests, 1u);
  EXPECT_EQ(svc.registry().total("fault.outage_denied"), 1u);
  EXPECT_EQ(svc.registry().total("rpc.busy"), 1u);
  EXPECT_EQ(svc.project().counters().results_sent, 1u);  // nothing issued

  // Returns are refused too (the client buffers the upload).
  const proto::Busy busy2 =
      proto::decode_busy(sole_frame(svc.handle(report(0, 2, 160.0, a))));
  EXPECT_DOUBLE_EQ(busy2.retry_after, 90.0);
  EXPECT_EQ(svc.project().counters().results_received, 0u);

  // After the window both flow again.
  const proto::ReportAck ack = proto::decode_report_ack(
      sole_frame(svc.handle(report(0, 3, 260.0, a))));
  EXPECT_EQ(ack.state, ResultState::kValid);
  proto::decode_assignment(sole_frame(svc.handle(request_work(1, 2, 261.0))));
}

// Deadline ticks falling inside an outage defer to the window's end — the
// same transitioner policy the epoch-barrier engine applies.
TEST(GridService, DeadlineTickDefersThroughOutage) {
  ServiceConfig config = quorum1_config();
  config.server.deadline = 100.0;  // assignment at t=0 -> deadline t=100
  hcmd::faults::OutageWindow w;
  w.begin_seconds = 50.0;
  w.end_seconds = 300.0;
  config.faults.outages.push_back(w);
  GridService svc(synthetic_catalog(4, 4.0), config);

  proto::decode_assignment(sole_frame(svc.handle(request_work(0, 1, 0.0))));
  ASSERT_EQ(svc.deadlines_armed(), 1u);

  // Drive time past the nominal deadline but inside the outage: the tick
  // must defer, not fire.
  std::vector<WireRequest> empty;
  std::vector<WireResponse> out;
  svc.process_batch(empty, 150.0, out);
  EXPECT_EQ(svc.project().counters().results_timed_out, 0u);
  EXPECT_EQ(svc.fault_schedule().counters().deadline_deferrals, 1u);
  EXPECT_EQ(svc.deadlines_armed(), 1u);  // re-armed at the window end

  // Past the window end the deferred tick fires and the workunit re-issues.
  svc.process_batch(empty, 301.0, out);
  EXPECT_EQ(svc.project().counters().results_timed_out, 1u);
  EXPECT_EQ(svc.deadlines_armed(), 0u);
}

// The service replays a batch in (time, lane, device, seq) order: any
// arrival interleaving of the same stamped traffic produces the identical
// issue sequence.
TEST(GridService, BatchReplayIsArrivalOrderInvariant) {
  auto run = [](unsigned shuffle_seed) {
    GridService svc(synthetic_catalog(64, 4.0), quorum1_config());
    std::vector<WireRequest> batch;
    for (std::uint32_t d = 0; d < 8; ++d)
      for (std::uint64_t s = 1; s <= 4; ++s)
        batch.push_back(request_work(d, s, 10.0 + static_cast<double>(s)));
    std::shuffle(batch.begin(), batch.end(), std::mt19937(shuffle_seed));
    std::vector<WireResponse> out;
    svc.process_batch(batch, 20.0, out);
    // Map (device, seq) -> workunit id.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> issued;
    for (const WireResponse& r : out) {
      std::size_t off = 0;
      const proto::Frame f = *proto::try_extract(r.bytes, off);
      const proto::Assignment a = proto::decode_assignment(f);
      issued.emplace_back((static_cast<std::uint64_t>(a.device) << 32) | a.seq,
                          a.workunit);
    }
    std::sort(issued.begin(), issued.end());
    return issued;
  };

  const auto a = run(1);
  const auto b = run(2);
  const auto c = run(3);
  ASSERT_EQ(a.size(), 32u);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(GridService, StatusReportsCountersAndProgress) {
  GridService svc(synthetic_catalog(2, 4.0), quorum1_config());
  const proto::Assignment a = proto::decode_assignment(
      sole_frame(svc.handle(request_work(0, 1, 0.0))));
  proto::decode_report_ack(sole_frame(svc.handle(report(0, 2, 10.0, a))));

  WireRequest q;
  q.verb = proto::Verb::kGetStatus;
  q.device = 0;
  q.seq = 3;
  q.time = 20.0;
  const proto::Status s = proto::decode_status(sole_frame(svc.handle(q)));
  EXPECT_EQ(s.results_sent, 1u);
  EXPECT_EQ(s.results_received, 1u);
  EXPECT_EQ(s.results_valid, 1u);
  EXPECT_EQ(s.workunits_completed, 1u);
  EXPECT_EQ(s.workunits_total, 2u);
  EXPECT_EQ(s.rpc_requests, 3u);
  EXPECT_FALSE(s.complete);
}

TEST(GridService, RejectsBadConfig) {
  ServiceConfig config = quorum1_config();
  config.max_devices = 0;
  EXPECT_THROW(GridService(synthetic_catalog(2, 4.0), config),
               hcmd::ConfigError);

  ServiceConfig slo = quorum1_config();
  slo.slo_latency_seconds = 0.0;
  EXPECT_THROW(GridService(synthetic_catalog(2, 4.0), slo),
               hcmd::ConfigError);

  ServiceConfig burn = quorum1_config();
  burn.slo_budget_fraction = -0.5;
  EXPECT_THROW(GridService(synthetic_catalog(2, 4.0), burn),
               hcmd::ConfigError);
}

TEST(GridService, SpanEchoFollowsTheRequestFlag) {
  ServiceConfig config = quorum1_config();
  config.span_sample_every = 1;  // record every RPC: totals are exact below
  GridService svc(synthetic_catalog(8, 4.0), config);

  // Without the flag: no tail, a 1.0 client sees the 1.0 frame.
  const proto::Assignment plain = proto::decode_assignment(
      sole_frame(svc.handle(request_work(0, 1, 5.0))));
  EXPECT_FALSE(plain.span.has_value());

  // With the flag: a monotone server-side timeline comes back.
  WireRequest m = request_work(1, 2, 6.0);
  m.flags = proto::kFlagWantSpan;
  m.t_enqueue = 6.0009765625;
  const proto::Assignment a =
      proto::decode_assignment(sole_frame(svc.handle(m)));
  ASSERT_TRUE(a.span.has_value());
  EXPECT_EQ(a.span->t_read, 6.0);
  EXPECT_EQ(a.span->t_enqueue, 6.0009765625);
  EXPECT_GE(a.span->t_dequeue, a.span->t_enqueue);
  EXPECT_GE(a.span->t_decision, a.span->t_dequeue);

  // The stage histograms saw the request-work class.
  const auto* queue_wait =
      svc.registry().histogram(
          svc.registry().find("rpc.request_work.queue_wait_seconds"));
  ASSERT_NE(queue_wait, nullptr);
  EXPECT_EQ(queue_wait->total(), 2u);
}

TEST(GridService, SpanSamplingThinsStatisticsButNotTheExactLanes) {
  ServiceConfig config = quorum1_config();
  config.span_sample_every = 4;
  GridService svc(synthetic_catalog(16, 4.0), config);
  for (std::uint64_t s = 1; s <= 8; ++s) {
    WireRequest m = request_work(0, s, 5.0 + static_cast<double>(s));
    m.flags = proto::kFlagWantSpan;
    // The frame is a view into the response bytes: keep the response alive
    // across the decode.
    const WireResponse r = svc.handle(m);
    const proto::Frame f = sole_frame(r);
    // Exact lane: the echo answers every flagged request, sampled or not.
    EXPECT_TRUE(proto::decode_assignment(f).span.has_value());
  }
  // Exact lane: every verb still bumps its counter.
  EXPECT_EQ(svc.registry().total("rpc.requests"), 8u);
  // Sampled lane: the countdown starts at 1 (the first send always
  // records), so 8 sends at 1-in-4 hit sends #1 and #5.
  const auto* queue_wait =
      svc.registry().histogram(
          svc.registry().find("rpc.request_work.queue_wait_seconds"));
  ASSERT_NE(queue_wait, nullptr);
  EXPECT_EQ(queue_wait->total(), 2u);
}

TEST(GridService, SpansOffDisablesEchoAndStageHistograms) {
  ServiceConfig config = quorum1_config();
  config.spans = false;
  GridService svc(synthetic_catalog(8, 4.0), config);
  WireRequest m = request_work(0, 1, 5.0);
  m.flags = proto::kFlagWantSpan;  // the client may still ask
  const proto::Assignment a =
      proto::decode_assignment(sole_frame(svc.handle(m)));
  EXPECT_FALSE(a.span.has_value());
  const auto* queue_wait =
      svc.registry().histogram(
          svc.registry().find("rpc.request_work.queue_wait_seconds"));
  ASSERT_NE(queue_wait, nullptr);
  EXPECT_EQ(queue_wait->total(), 0u);
}

TEST(GridService, SloViolationsCountAgainstTheObjective) {
  ServiceConfig config = quorum1_config();
  config.slo_latency_seconds = 1.0;
  GridService svc(synthetic_catalog(8, 4.0), config);

  // Decision clock pinned 2 s after arrival: every request_work blows the
  // 1 s objective.
  svc.set_clock([] { return 12.0; });
  svc.handle(request_work(0, 1, 10.0));
  EXPECT_EQ(svc.registry().total("slo.latency_violations"), 1u);

  // Within the objective: no violation.
  svc.set_clock([] { return 12.5; });
  svc.handle(request_work(1, 2, 12.0));
  EXPECT_EQ(svc.registry().total("slo.latency_violations"), 1u);

  // Reports are not part of the issue-latency SLO.
  svc.set_clock([] { return 100.0; });
  WireRequest q;
  q.verb = proto::Verb::kGetStatus;
  q.device = 0;
  q.seq = 3;
  q.time = 50.0;
  svc.handle(q);
  EXPECT_EQ(svc.registry().total("slo.latency_violations"), 1u);
}

TEST(GridService, StatusCarriesUptimeAndPerVerbCounters) {
  GridService svc(synthetic_catalog(2, 4.0), quorum1_config());
  svc.set_time_scale(10.0);  // 10 service seconds per wall second
  const proto::Assignment a = proto::decode_assignment(
      sole_frame(svc.handle(request_work(0, 1, 0.0))));
  proto::decode_report_ack(sole_frame(svc.handle(report(0, 2, 10.0, a))));
  svc.handle(request_work(1, 3, 20.0));

  WireRequest q;
  q.verb = proto::Verb::kGetStatus;
  q.device = 0;
  q.seq = 4;
  q.time = 30.0;
  const proto::Status s = proto::decode_status(sole_frame(svc.handle(q)));
  EXPECT_DOUBLE_EQ(s.uptime_seconds, 3.0);  // 30 service s / scale 10
  EXPECT_EQ(s.rpc_assignments, 2u);
  EXPECT_EQ(s.rpc_no_work, 0u);
  EXPECT_EQ(s.rpc_reports, 1u);
  EXPECT_EQ(s.rpc_duplicate_reports, 0u);
  EXPECT_EQ(s.rpc_status, 1u);
  EXPECT_EQ(s.rpc_errors, 0u);
}

TEST(GridService, GetMetricsRendersTheRegistry) {
  GridService svc(synthetic_catalog(4, 4.0), quorum1_config());
  svc.handle(request_work(0, 1, 0.0));

  WireRequest q;
  q.verb = proto::Verb::kGetMetrics;
  q.device = 0;
  q.seq = 2;
  q.time = 1.0;
  q.metrics_format = proto::MetricsFormat::kPrometheus;
  const proto::Metrics m = proto::decode_metrics(sole_frame(svc.handle(q)));
  EXPECT_EQ(m.device, 0u);
  EXPECT_EQ(m.seq, 2u);
  EXPECT_EQ(m.format, proto::MetricsFormat::kPrometheus);
  EXPECT_NE(m.text.find("hcmd_rpc_requests_total 2"), std::string::npos)
      << m.text;

  q.seq = 3;
  q.metrics_format = proto::MetricsFormat::kJson;
  const proto::Metrics j = proto::decode_metrics(sole_frame(svc.handle(q)));
  EXPECT_NE(j.text.find("\"kind\":\"hcmd-metrics-snapshot\""),
            std::string::npos);
  EXPECT_EQ(svc.registry().total("rpc.metrics"), 2u);

  // A custom provider (the GridServer wires one that folds in worker-side
  // histograms) takes over rendering.
  svc.set_metrics_provider(
      [](proto::MetricsFormat) { return std::string("custom"); });
  q.seq = 4;
  EXPECT_EQ(proto::decode_metrics(sole_frame(svc.handle(q))).text, "custom");
}

TEST(GridService, DumpDiagnosticsUsesTheInjectedSink) {
  GridService svc(synthetic_catalog(4, 4.0), quorum1_config());
  svc.set_diagnostics_sink(
      [] { return std::make_pair(std::string("flight-test.jsonl"),
                                 std::uint64_t{42}); });
  WireRequest q;
  q.verb = proto::Verb::kDumpDiagnostics;
  q.device = 7;
  q.seq = 8;
  q.time = 1.0;
  const proto::DiagnosticsAck ack =
      proto::decode_diagnostics_ack(sole_frame(svc.handle(q)));
  EXPECT_EQ(ack.device, 7u);
  EXPECT_EQ(ack.seq, 8u);
  EXPECT_EQ(ack.path, "flight-test.jsonl");
  EXPECT_EQ(ack.events, 42u);
  EXPECT_EQ(svc.registry().total("rpc.diagnostics"), 1u);
}

}  // namespace
