// Chaos campaign: a scale-0.01 Phase I run under a compound fault plan —
// a weekend server outage, 1% result corruption, background loss,
// stragglers and a 10% churn spike — must still assimilate every workunit
// with zero corrupt results accepted, and must replay bit-identically.
#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include "util/duration.hpp"

namespace hcmd::core {
namespace {

using util::kSecondsPerHour;
using util::kSecondsPerWeek;

faults::FaultPlan chaos_plan() {
  faults::FaultPlan plan;
  // The scheduler goes dark from Friday evening to Monday morning of the
  // first week (the outage-weekend preset's window).
  plan.outages.push_back({114.0 * kSecondsPerHour, 182.0 * kSecondsPerHour});
  plan.corruption_rate = 0.01;
  plan.loss_rate = 0.002;
  plan.straggler_fraction = 0.05;
  plan.straggler_slowdown = 4.0;
  // A tenth of the fleet walks away at the start of week 4.
  plan.churn_spikes.push_back({4.0 * kSecondsPerWeek, 0.1});
  return plan;
}

CampaignConfig chaos_config() {
  CampaignConfig config;
  config.scale = 0.01;
  config.faults = chaos_plan();
  // Quorum-2 validation for the whole run: with 1% corruption the range
  // check alone would let corrupt singletons through, and the acceptance
  // bar is zero corrupt assimilations.
  config.server.validation.quorum2_until = 100.0 * kSecondsPerWeek;
  // Full quorum-2 roughly doubles the work; give the run headroom over the
  // ~26-week faults-free baseline.
  config.max_weeks = 80.0;
  return config;
}

TEST(ChaosCampaign, CompletesCleanlyUnderCompoundFaults) {
  const CampaignReport report = run_campaign(chaos_config());

  // Everything assimilated despite outage + corruption + loss + churn.
  EXPECT_TRUE(report.completed);
  EXPECT_LT(report.completion_weeks, 80.0);
  EXPECT_EQ(report.counters.corrupt_assimilated, 0u);

  // The plan actually fired, and the report says so.
  EXPECT_TRUE(report.faults.enabled);
  const auto& f = report.faults.counters;
  EXPECT_GT(f.outage_denied_requests, 0u);
  EXPECT_GT(f.deferred_uploads, 0u);
  EXPECT_GT(f.backoff_retries, 0u);
  EXPECT_GT(f.corrupted_results, 0u);
  EXPECT_GT(f.lost_results, 0u);
  EXPECT_GT(f.straggler_devices, 0u);
  EXPECT_EQ(f.churn_spikes, 1u);
  EXPECT_GT(f.churn_killed, 0u);

  // Corruption was caught the quorum way: mismatches, not assimilations.
  EXPECT_GT(report.counters.quorum_mismatches, 0u);
  EXPECT_EQ(report.faults.plan.outages.size(), 1u);
}

TEST(ChaosCampaign, AdaptivePolicyStopsSaboteurFleet) {
  // The adversarial acceptance case: a fleet where 1% of devices corrupt
  // every result they return, validated by the adaptive reputation ledger
  // (saboteurs never earn a verified outcome, so they never leave quorum-2
  // and can never be the sole validator). The campaign must finish with
  // zero corrupt results assimilated — at a redundancy nowhere near the
  // quorum-2-everywhere ~2x it would otherwise take.
  CampaignConfig config;
  config.scale = 0.01;
  config.faults = faults::fault_preset("saboteur-1pct");
  config.server.policy = server::PolicyKind::kAdaptiveTrust;
  const CampaignReport report = run_campaign(config);

  EXPECT_TRUE(report.completed);
  const auto& f = report.faults.counters;
  EXPECT_GT(f.saboteur_devices, 0u);
  EXPECT_GT(f.saboteur_corrupted_results, 0u);
  EXPECT_GT(report.validation.corruption_injected, 0u);
  EXPECT_EQ(report.validation.corruption_assimilated, 0u);
  EXPECT_EQ(report.counters.corrupt_assimilated, 0u);

  // The ledger did its job the cheap way: most decisions were quorum-1,
  // mismatching devices were escalated, and the redundancy stayed under
  // the 1.2x acceptance bound.
  EXPECT_EQ(report.validation.policy.name, "adaptive");
  EXPECT_GT(report.validation.policy.counters.solo_issues,
            report.validation.policy.counters.quorum2_decisions);
  EXPECT_GT(report.validation.policy.counters.escalations, 0u);
  EXPECT_GT(report.counters.quorum_mismatches, 0u);
  EXPECT_LT(report.redundancy_factor, 1.25);
}

TEST(ChaosCampaign, ReplaysBitIdentically) {
  const CampaignReport a = run_campaign(chaos_config());
  const CampaignReport b = run_campaign(chaos_config());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.completion_weeks, b.completion_weeks);  // bitwise, no NEAR
  EXPECT_EQ(a.counters.results_sent, b.counters.results_sent);
  EXPECT_EQ(a.counters.results_received, b.counters.results_received);
  EXPECT_EQ(a.counters.results_valid, b.counters.results_valid);
  EXPECT_EQ(a.counters.results_timed_out, b.counters.results_timed_out);
  EXPECT_EQ(a.faults.counters.corrupted_results,
            b.faults.counters.corrupted_results);
  EXPECT_EQ(a.faults.counters.lost_results, b.faults.counters.lost_results);
  EXPECT_EQ(a.faults.counters.churn_killed, b.faults.counters.churn_killed);
  EXPECT_EQ(a.faults.counters.backoff_retries,
            b.faults.counters.backoff_retries);
}

}  // namespace
}  // namespace hcmd::core
