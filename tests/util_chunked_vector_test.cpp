#include "util/chunked_vector.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hcmd::util {
namespace {

TEST(ChunkedVector, StartsEmpty) {
  ChunkedVector<int, 8> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
}

TEST(ChunkedVector, PushBackAndIndexAcrossChunkBoundaries) {
  ChunkedVector<int, 8> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_FALSE(v.empty());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(v.back(), 99);
}

TEST(ChunkedVector, ReferencesStayValidAcrossGrowth) {
  // The whole point of the container: a std::vector would invalidate this
  // reference on its first reallocation.
  ChunkedVector<int, 4> v;
  int& first = v.push_back(42);
  int* const addr = &first;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(addr, &v[0]);
  EXPECT_EQ(first, 42);
  first = 7;
  EXPECT_EQ(v[0], 7);
}

TEST(ChunkedVector, PushBackReturnsTheStoredSlot) {
  ChunkedVector<std::string, 4> v;
  std::string& s = v.push_back("hello");
  s += " world";
  EXPECT_EQ(v[0], "hello world");
}

TEST(ChunkedVector, ReservePreallocatesWithoutChangingSize) {
  ChunkedVector<int, 8> v;
  v.reserve(100);
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v[99], 99);
}

TEST(ChunkedVector, ClearReleasesEverything) {
  ChunkedVector<int, 8> v;
  for (int i = 0; i < 50; ++i) v.push_back(i);
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  v.push_back(5);
  EXPECT_EQ(v[0], 5);
  EXPECT_EQ(v.size(), 1u);
}

TEST(ChunkedVector, MutationThroughIndexSticks) {
  ChunkedVector<int, 4> v;
  for (int i = 0; i < 20; ++i) v.push_back(0);
  v[13] = 99;
  EXPECT_EQ(v[13], 99);
  EXPECT_EQ(v[12], 0);
  EXPECT_EQ(v[14], 0);
}

}  // namespace
}  // namespace hcmd::util
