#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace hcmd::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 42; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i)
    pool.submit([&done] { ++done; });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, DefaultSizeAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, CoversAllIndicesOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(),
               [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, GrainedChunks) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; },
               /*grain=*/7);
  int total = 0;
  for (const auto& h : hits) total += h.load();
  EXPECT_EQ(total, 100);
}

TEST(ParallelFor, EmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, RethrowsFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("bad index");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, ParallelSumMatchesSerial) {
  ThreadPool pool(8);
  std::vector<double> xs(10000);
  std::iota(xs.begin(), xs.end(), 0.0);
  std::vector<double> squares(xs.size());
  parallel_for(pool, xs.size(),
               [&](std::size_t i) { squares[i] = xs[i] * xs[i]; }, 64);
  double sum = std::accumulate(squares.begin(), squares.end(), 0.0);
  double expect = 0.0;
  for (double x : xs) expect += x * x;
  EXPECT_DOUBLE_EQ(sum, expect);
}

}  // namespace
}  // namespace hcmd::util
