// Telemetry must be a pure observer: attaching a tracer (and the registry
// instrumentation that rides along) may not perturb the simulation, and the
// trace stream itself must be a deterministic function of the config.
//
// Two properties, both at the golden scale-0.01 default-seed config:
//   1. two traced runs produce byte-identical trace streams (JSONL and
//      Chrome export alike);
//   2. a traced run reproduces the golden regression numbers bit-exactly
//      (the same constants core_campaign_regression_test pins for the
//      untraced run — tracing changed nothing).
#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/run_report.hpp"

namespace hcmd::core {
namespace {

CampaignConfig golden_config() {
  CampaignConfig config;
  config.scale = 0.01;  // default seed, coarse 1/100 scale
  return config;
}

struct TracedRun {
  CampaignReport report;
  std::string jsonl;
  std::string chrome;
  std::uint64_t recorded = 0;
};

TracedRun traced_run() {
  obs::Tracer tracer;
  CampaignInstruments instruments;
  instruments.tracer = &tracer;
  TracedRun out;
  out.report = run_campaign(golden_config(), instruments);
  out.jsonl = tracer.jsonl();
  out.chrome = tracer.chrome_trace_json();
  out.recorded = tracer.recorded();
  return out;
}

const TracedRun& first_run() {
  static const TracedRun run = traced_run();
  return run;
}

TEST(TraceDeterminism, IdenticalRunsProduceIdenticalStreams) {
  const TracedRun& a = first_run();
  const TracedRun b = traced_run();
  EXPECT_GT(a.recorded, 0u);
  EXPECT_EQ(a.recorded, b.recorded);
  EXPECT_EQ(a.jsonl, b.jsonl);    // byte-identical
  EXPECT_EQ(a.chrome, b.chrome);  // byte-identical
}

TEST(TraceDeterminism, TracingDoesNotPerturbGoldenNumbers) {
  // The exact constants core_campaign_regression_test pins for the bare
  // run: if tracing drew RNG, scheduled an event or re-ordered dispatch,
  // these would drift.
  const auto& r = first_run().report;
  const auto& c = r.counters;
  EXPECT_EQ(r.devices_simulated, 2915u);
  EXPECT_EQ(c.results_sent, 48237u);
  EXPECT_EQ(c.results_received, 47811u);
  EXPECT_EQ(c.results_valid, 34567u);
  EXPECT_EQ(c.workunits_completed, 34567u);
  EXPECT_EQ(r.completion_weeks, 25.428571428571427);
  EXPECT_EQ(r.counters.useful_reference_seconds, 449868784.9010374);
  EXPECT_EQ(r.counters.reported_runtime_seconds, 2465283311.17629);
  EXPECT_EQ(r.runtime_summary.mean, 51563.098683907003);
  EXPECT_EQ(r.avg_wcg_vftp_whole, 55869.374238346973);
  EXPECT_EQ(r.avg_hcmd_vftp_whole, 16043.688621537811);
  EXPECT_EQ(r.total_credit, 80674801.988260508);
}

TEST(TraceDeterminism, TraceStreamCoversLifecycle) {
  const TracedRun& a = first_run();
  // Every workunit lifecycle stage must appear in the stream.
  for (const char* ev : {"\"ev\":\"wu_issue\"", "\"ev\":\"wu_return\"",
                         "\"ev\":\"wu_timeout\"", "\"ev\":\"wu_reissue\"",
                         "\"ev\":\"wu_assimilate\"", "\"ev\":\"dev_join\"",
                         "\"ev\":\"dev_death\""})
    EXPECT_NE(a.jsonl.find(ev), std::string::npos) << ev;
}

TEST(TraceDeterminism, RunReportCarriesPaperSeries) {
  const TracedRun& a = first_run();
  obs::Tracer tracer;  // stats-only section; stream content already checked
  const std::string json = run_report_json(golden_config(), a.report,
                                           &tracer);
  for (const char* key :
       {"\"fig6a\"", "\"fig6b\"", "\"fig7\"", "\"fig8\"", "\"table2\"",
        "\"hcmd_vftp_weekly\"", "\"results_useful_weekly\"",
        "\"gross_speeddown\"", "\"telemetry\"", "\"self_profile\"",
        "\"trace\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(TraceDeterminism, TelemetrySnapshotPopulated) {
  const auto& r = first_run().report;
  EXPECT_FALSE(r.telemetry_counters.empty());
  EXPECT_FALSE(r.telemetry_histograms.empty());
  // The fleet's pre-resolved counters and the server's histograms landed in
  // the same registry.
  bool saw_requests = false, saw_turnaround = false;
  for (const auto& tc : r.telemetry_counters)
    if (tc.name == "fleet.work_requests" && tc.value > 0) saw_requests = true;
  for (const auto& th : r.telemetry_histograms)
    if (th.name == "server.result_turnaround_seconds" && th.count > 0)
      saw_turnaround = true;
  EXPECT_TRUE(saw_requests);
  EXPECT_TRUE(saw_turnaround);
}

}  // namespace
}  // namespace hcmd::core
