#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <stdexcept>
#include <vector>

#include "util/error.hpp"

namespace hcmd::obs {
namespace {

TEST(MetricIdTest, InvalidByDefault) {
  MetricId id;
  EXPECT_FALSE(id.valid());
  EXPECT_FALSE(id.is_histogram());
}

TEST(Registry, InternIsIdempotent) {
  Registry r;
  const MetricId a = r.intern_counter("results");
  const MetricId b = r.intern_counter("results");
  EXPECT_EQ(a.value, b.value);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(a.is_histogram());
}

TEST(Registry, CounterAddAndTotal) {
  Registry r;
  const MetricId id = r.intern_counter("sent");
  r.add(id);
  r.add(id, 41);
  EXPECT_EQ(r.total(id), 42u);
  EXPECT_EQ(r.total("sent"), 42u);
  EXPECT_EQ(r.total("missing"), 0u);
}

TEST(Registry, InvalidIdIsIgnored) {
  Registry r;
  r.add(MetricId{});          // must not crash
  r.observe(MetricId{}, 1.0); // must not crash
  EXPECT_EQ(r.total(MetricId{}), 0u);
}

TEST(Registry, KindMismatchThrows) {
  // Re-interning a name with the other kind is a programming error and
  // trips the debug assertion (std::logic_error), not a config problem.
  Registry r;
  r.intern_counter("x");
  EXPECT_THROW(r.intern_histogram("x"), std::logic_error);
  r.intern_histogram("h");
  EXPECT_THROW(r.intern_counter("h"), std::logic_error);
}

TEST(Registry, FindResolvesInternedNames) {
  Registry r;
  const MetricId c = r.intern_counter("c");
  const MetricId h = r.intern_histogram("h");
  EXPECT_EQ(r.find("c").value, c.value);
  EXPECT_EQ(r.find("h").value, h.value);
  EXPECT_TRUE(r.find("h").is_histogram());
  EXPECT_FALSE(r.find("nope").valid());
}

TEST(Registry, NamesSorted) {
  Registry r;
  r.intern_counter("zed");
  r.intern_counter("alpha");
  r.intern_histogram("mid");
  EXPECT_EQ(r.counter_names(), (std::vector<std::string>{"alpha", "zed"}));
  EXPECT_EQ(r.histogram_names(), (std::vector<std::string>{"mid"}));
}

TEST(Registry, ConcurrentAddsAggregate) {
  Registry r;
  const MetricId id = r.intern_counter("hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) r.add(id);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(r.total(id), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Registry, CapacityThrowsPastLimit) {
  Registry r;
  for (std::size_t i = 0; i < Registry::kMaxCounters; ++i)
    r.intern_counter("c" + std::to_string(i));
  EXPECT_THROW(r.intern_counter("one-too-many"), ConfigError);
}

TEST(LogHistogramTest, RecordsBasicStats) {
  LogHistogram h;
  h.record(1.0);
  h.record(2.0);
  h.record(4.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 7.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_NEAR(h.mean(), 7.0 / 3.0, 1e-12);
}

TEST(LogHistogramTest, QuantilesWithinRelativeBinWidth) {
  LogHistogram h;
  // 1000 samples of an exactly-known geometric ladder.
  for (int i = 0; i < 1000; ++i) h.record(std::pow(2.0, i % 20));
  // The p50 of {2^0..2^19} uniform is ~2^9.5; log bins are ~19 % wide, so a
  // generous factor-of-2 bracket proves the right octave was hit.
  const double p50 = h.quantile(0.5);
  EXPECT_GT(p50, std::pow(2.0, 8.5));
  EXPECT_LT(p50, std::pow(2.0, 10.5));
  // Quantiles are clamped into the observed range.
  EXPECT_GE(h.quantile(0.0), h.min());
  EXPECT_LE(h.quantile(1.0), h.max());
}

TEST(LogHistogramTest, ExtremesClampToEdgeBins) {
  LogHistogram h;
  h.record(0.0);     // below range: lowest bin
  h.record(1e300);   // above range: highest bin
  h.record(-5.0);    // negative clamps like zero
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.max(), 1e300);
  std::uint64_t binned = 0;
  for (std::uint64_t c : h.counts()) binned += c;
  EXPECT_EQ(binned, 3u);
}

TEST(LogHistogramTest, EmptyIsAllZero) {
  LogHistogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(LogHistogramTest, MergeMatchesSingleRecorderBinExactly) {
  // Splitting a sample stream across two recorders and merging must be
  // indistinguishable from one recorder seeing everything: same bins, same
  // count, same min/max, same quantiles.
  LogHistogram a;
  LogHistogram b;
  LogHistogram whole;
  for (int i = 0; i < 997; ++i) {
    // Spread over ~9 decades so many distinct bins are hit.
    const double v = 1e-6 * std::pow(1.31, i % 75);
    whole.record(v);
    ((i % 3 == 0) ? a : b).record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.counts(), whole.counts());
  EXPECT_EQ(a.total(), whole.total());
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
  // The sums accumulate in a different order; allow rounding drift only.
  EXPECT_NEAR(a.sum(), whole.sum(), 1e-9 * whole.sum());
  for (const double p : {0.0, 0.5, 0.9, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(a.quantile(p), whole.quantile(p)) << "p=" << p;
}

TEST(LogHistogramTest, MergeEmptyIsIdentity) {
  LogHistogram h;
  h.record(3.0);
  h.record(5.0);
  const LogHistogram empty;
  h.merge(empty);  // no-op: stats unchanged
  EXPECT_EQ(h.total(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 3.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.sum(), 8.0);

  LogHistogram into;
  into.merge(h);  // merge into empty adopts the source's stats
  EXPECT_EQ(into.counts(), h.counts());
  EXPECT_EQ(into.total(), 2u);
  EXPECT_DOUBLE_EQ(into.min(), 3.0);
  EXPECT_DOUBLE_EQ(into.max(), 5.0);

  LogHistogram both_empty;
  both_empty.merge(empty);
  EXPECT_EQ(both_empty.total(), 0u);
  EXPECT_DOUBLE_EQ(both_empty.min(), 0.0);
  EXPECT_DOUBLE_EQ(both_empty.quantile(0.5), 0.0);
}

TEST(LogHistogramTest, SelfMergeDoubles) {
  LogHistogram h;
  h.record(1.0);
  h.record(8.0);
  h.merge(h);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 18.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
  std::uint64_t binned = 0;
  for (std::uint64_t c : h.counts()) binned += c;
  EXPECT_EQ(binned, 4u);
}

TEST(LogHistogramTest, MergeCombinesClampedEdgeBins) {
  // Out-of-range samples clamp to the edge bins; merging two histograms
  // that clamped on opposite ends keeps both edges and the true min/max.
  LogHistogram lo;
  lo.record(0.0);     // below range
  lo.record(-2.0);    // negative clamps to zero before the stats
  LogHistogram hi;
  hi.record(1e300);   // above range
  lo.merge(hi);
  EXPECT_EQ(lo.total(), 3u);
  EXPECT_DOUBLE_EQ(lo.min(), 0.0);
  EXPECT_DOUBLE_EQ(lo.max(), 1e300);
  EXPECT_EQ(lo.counts().front(), 2u);
  EXPECT_EQ(lo.counts().back(), 1u);
}

TEST(Registry, HistogramObserve) {
  Registry r;
  const MetricId id = r.intern_histogram("latency");
  r.observe(id, 10.0);
  r.observe(id, 20.0);
  const LogHistogram* h = r.histogram(id);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->total(), 2u);
  EXPECT_DOUBLE_EQ(h->sum(), 30.0);
  // A counter id yields no histogram.
  EXPECT_EQ(r.histogram(r.intern_counter("c")), nullptr);
}

}  // namespace
}  // namespace hcmd::obs
