#include "server/share_schedule.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hcmd::server {
namespace {

constexpr double kWeek = util::kSecondsPerWeek;

TEST(ShareSchedule, ThreePhases) {
  const ShareSchedule s;
  EXPECT_EQ(s.phase_at(0.0), CampaignPhase::kControl);
  EXPECT_EQ(s.phase_at(4.0 * kWeek), CampaignPhase::kControl);
  EXPECT_EQ(s.phase_at(9.0 * kWeek), CampaignPhase::kPrioritization);
  EXPECT_EQ(s.phase_at(20.0 * kWeek), CampaignPhase::kFullPower);
}

TEST(ShareSchedule, ControlShareLow) {
  const ShareSchedule s;
  EXPECT_DOUBLE_EQ(s.share_at(0.0), s.params().control_share);
  EXPECT_LT(s.share_at(0.0), 0.10);
}

TEST(ShareSchedule, FullShareMatchesPaper45Percent) {
  // "At the end of February, 45% of WCG's devices participated to HCMD".
  const ShareSchedule s;
  EXPECT_DOUBLE_EQ(s.share_at(s.full_power_start()), 0.45);
  EXPECT_DOUBLE_EQ(s.share_at(25.0 * kWeek), 0.45);
}

TEST(ShareSchedule, RampIsMonotone) {
  const ShareSchedule s;
  const double start = s.params().control_weeks * kWeek;
  const double end = s.full_power_start();
  double prev = 0.0;
  for (double t = start; t <= end; t += (end - start) / 10.0) {
    const double share = s.share_at(t);
    EXPECT_GE(share, prev - 1e-12);
    prev = share;
  }
}

TEST(ShareSchedule, RampMidpointIsAverage) {
  const ShareSchedule s;
  const double start = s.params().control_weeks * kWeek;
  const double mid = 0.5 * (start + s.full_power_start());
  EXPECT_NEAR(s.share_at(mid),
              0.5 * (s.params().control_share + s.params().full_share),
              1e-9);
}

TEST(ShareSchedule, FullPowerStartComputed) {
  ShareScheduleParams p;
  p.control_weeks = 8.0;
  p.ramp_weeks = 3.0;
  const ShareSchedule s(p);
  EXPECT_DOUBLE_EQ(s.full_power_start(), 11.0 * kWeek);
}

TEST(ShareSchedule, PhaseNames) {
  EXPECT_EQ(ShareSchedule::phase_name(CampaignPhase::kControl), "control");
  EXPECT_EQ(ShareSchedule::phase_name(CampaignPhase::kPrioritization),
            "prioritization");
  EXPECT_EQ(ShareSchedule::phase_name(CampaignPhase::kFullPower),
            "full power");
}

TEST(ShareSchedule, RejectsBadParams) {
  ShareScheduleParams p;
  p.control_share = 0.9;
  p.full_share = 0.1;
  EXPECT_THROW(ShareSchedule{p}, hcmd::ConfigError);
  p = {};
  p.full_share = 1.5;
  EXPECT_THROW(ShareSchedule{p}, hcmd::ConfigError);
  p = {};
  p.control_weeks = -1.0;
  EXPECT_THROW(ShareSchedule{p}, hcmd::ConfigError);
}

TEST(ShareSchedule, ZeroLengthRampJumps) {
  ShareScheduleParams p;
  p.ramp_weeks = 0.0;
  const ShareSchedule s(p);
  const double boundary = p.control_weeks * kWeek;
  EXPECT_DOUBLE_EQ(s.share_at(boundary), p.full_share);
  EXPECT_DOUBLE_EQ(s.share_at(boundary - 1.0), p.control_share);
}

}  // namespace
}  // namespace hcmd::server
