#include "results/result_file.hpp"
#include "results/storage.hpp"
#include "results/verification.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace hcmd::results {
namespace {

docking::DockingRecord record(std::uint32_t isep, std::uint32_t irot,
                              double elj = -1.0, double eelec = -0.5) {
  docking::DockingRecord r;
  r.isep = isep;
  r.irot = irot;
  r.pose.x = 20.0;
  r.elj = elj;
  r.eelec = eelec;
  return r;
}

ResultFile full_file(std::uint32_t receptor, std::uint32_t ligand,
                     std::uint32_t begin, std::uint32_t end) {
  ResultFile f;
  f.receptor = receptor;
  f.ligand = ligand;
  f.isep_begin = begin;
  f.isep_end = end;
  for (std::uint32_t s = begin; s < end; ++s)
    for (std::uint32_t r = 0; r < proteins::kNumRotationCouples; ++r)
      f.records.push_back(record(s, r));
  return f;
}

TEST(ResultFile, ExpectedLinesIsPositionsTimes21) {
  const ResultFile f = full_file(0, 1, 0, 3);
  EXPECT_EQ(f.expected_lines(), 63u);
  EXPECT_EQ(f.records.size(), 63u);
}

TEST(ResultFile, SerializationRoundTrip) {
  const ResultFile f = full_file(2, 5, 1, 4);
  std::stringstream ss;
  f.write(ss);
  const ResultFile g = ResultFile::read(ss);
  EXPECT_EQ(g.receptor, 2u);
  EXPECT_EQ(g.ligand, 5u);
  EXPECT_EQ(g.isep_begin, 1u);
  EXPECT_EQ(g.isep_end, 4u);
  ASSERT_EQ(g.records.size(), f.records.size());
  EXPECT_EQ(g.records[10].isep, f.records[10].isep);
  EXPECT_DOUBLE_EQ(g.records[10].elj, f.records[10].elj);
}

TEST(ResultFile, ReadRejectsGarbage) {
  std::stringstream ss("not-a-result 1 2 3 4 5");
  EXPECT_THROW(ResultFile::read(ss), hcmd::ParseError);
}

TEST(ResultFile, ByteSizeTracksRecordCount) {
  const ResultFile small = full_file(0, 0, 0, 1);
  const ResultFile big = full_file(0, 0, 0, 10);
  EXPECT_GT(big.byte_size(), 5 * small.byte_size());
}

TEST(ResultFile, MakeFromCheckpointFiltersSlice) {
  docking::MaxDoCheckpoint cp;
  cp.next_isep = 6;
  for (std::uint32_t s = 0; s < 6; ++s) cp.records.push_back(record(s, 0));
  const ResultFile f = make_result_file(1, 2, 2, 5, cp);
  EXPECT_EQ(f.records.size(), 3u);
  EXPECT_EQ(f.records.front().isep, 2u);
  EXPECT_EQ(f.records.back().isep, 4u);
}

TEST(ResultFile, MakeFromIncompleteCheckpointThrows) {
  docking::MaxDoCheckpoint cp;
  cp.next_isep = 3;
  EXPECT_THROW(make_result_file(1, 2, 0, 5, cp), hcmd::Error);
}

TEST(Merge, CombinesSlicesSorted) {
  const ResultFile a = full_file(1, 2, 3, 6);
  const ResultFile b = full_file(1, 2, 0, 3);
  const ResultFile merged = merge_files({a, b}, 6, true);
  EXPECT_EQ(merged.isep_begin, 0u);
  EXPECT_EQ(merged.isep_end, 6u);
  ASSERT_EQ(merged.records.size(), 6u * proteins::kNumRotationCouples);
  for (std::size_t i = 1; i < merged.records.size(); ++i) {
    const auto& prev = merged.records[i - 1];
    const auto& cur = merged.records[i];
    EXPECT_TRUE(prev.isep < cur.isep ||
                (prev.isep == cur.isep && prev.irot < cur.irot));
  }
}

TEST(Merge, DetectsOverlap) {
  const ResultFile a = full_file(1, 2, 0, 4);
  const ResultFile b = full_file(1, 2, 3, 6);
  EXPECT_THROW(merge_files({a, b}, 6, true), hcmd::Error);
}

TEST(Merge, DetectsGapWhenCompleteRequired) {
  const ResultFile a = full_file(1, 2, 0, 2);
  const ResultFile b = full_file(1, 2, 4, 6);
  EXPECT_THROW(merge_files({a, b}, 6, true), hcmd::Error);
  EXPECT_NO_THROW(merge_files({a, b}, 6, false));
}

TEST(Merge, RejectsMixedCouples) {
  const ResultFile a = full_file(1, 2, 0, 3);
  const ResultFile b = full_file(1, 3, 3, 6);
  EXPECT_THROW(merge_files({a, b}, 6, true), hcmd::Error);
}

TEST(Verify, FileCountCheckPasses) {
  std::vector<ResultFile> delivery;
  for (std::uint32_t l = 0; l < 4; ++l)
    delivery.push_back(full_file(0, l, 0, 2));
  EXPECT_TRUE(check_file_count(delivery, 0, 4).ok);
}

TEST(Verify, FileCountCheckCatchesMissingAndDuplicate) {
  std::vector<ResultFile> missing;
  for (std::uint32_t l = 0; l < 3; ++l)
    missing.push_back(full_file(0, l, 0, 2));
  EXPECT_FALSE(check_file_count(missing, 0, 4).ok);

  std::vector<ResultFile> duplicated;
  duplicated.push_back(full_file(0, 1, 0, 2));
  duplicated.push_back(full_file(0, 1, 0, 2));
  EXPECT_FALSE(check_file_count(duplicated, 0, 2).ok);
}

TEST(Verify, FileCountCheckCatchesForeignReceptor) {
  std::vector<ResultFile> delivery{full_file(3, 0, 0, 2)};
  EXPECT_FALSE(check_file_count(delivery, 0, 1).ok);
}

TEST(Verify, LineCountCheck) {
  ResultFile good = full_file(0, 0, 0, 2);
  EXPECT_TRUE(check_line_counts({good}).ok);
  good.records.pop_back();
  const auto report = check_line_counts({good});
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].first, CheckFailure::kLineCount);
}

TEST(Verify, ValueRangeCheckPassesPhysicalValues) {
  EXPECT_TRUE(check_value_ranges(full_file(0, 0, 0, 2)).ok);
}

TEST(Verify, ValueRangeCheckCatchesBadEnergy) {
  ResultFile f = full_file(0, 0, 0, 1);
  f.records[0].elj = 1e9;  // beyond max_energy
  const auto report = check_value_ranges(f);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.failures[0].first, CheckFailure::kValueRange);
}

TEST(Verify, ValueRangeCheckCatchesNonFinite) {
  ResultFile f = full_file(0, 0, 0, 1);
  f.records[0].eelec = std::nan("");
  EXPECT_FALSE(check_value_ranges(f).ok);
}

TEST(Verify, ValueRangeCheckCatchesBadCoordinates) {
  ResultFile f = full_file(0, 0, 0, 1);
  f.records[0].pose.x = 1e4;
  EXPECT_FALSE(check_value_ranges(f).ok);
}

TEST(Verify, ValueRangeCheckCatchesIndexOutOfSlice) {
  ResultFile f = full_file(0, 0, 2, 4);
  f.records[0].isep = 0;  // outside [2, 4)
  EXPECT_FALSE(check_value_ranges(f).ok);
}

TEST(Verify, FullDeliveryPipeline) {
  std::vector<ResultFile> delivery;
  for (std::uint32_t l = 0; l < 3; ++l)
    delivery.push_back(full_file(1, l, 0, 2));
  EXPECT_TRUE(verify_delivery(delivery, 1, 3).ok);
  delivery[1].records[0].elj = -1e9;
  EXPECT_FALSE(verify_delivery(delivery, 1, 3).ok);
}

TEST(Storage, PaperScaleEstimate) {
  // "All these result files represents 123 Gb of text files (45 Gb
  // compressed) and there are 168^2 files."
  const auto bench = proteins::generate_benchmark({});
  const StorageEstimate e = estimate_storage(bench);
  EXPECT_EQ(e.files, 168u * 168u);
  EXPECT_NEAR(e.raw_bytes, 123e9, 0.08 * 123e9);
  EXPECT_NEAR(e.compressed_bytes, 45e9, 0.10 * 45e9);
}

TEST(Storage, LinesMatchCandidateOrientationCount) {
  const auto bench = proteins::generate_benchmark({});
  const StorageEstimate e = estimate_storage(bench);
  EXPECT_EQ(e.total_lines,
            bench.candidate_workunits() *
                static_cast<std::uint64_t>(proteins::kNumRotationCouples));
}

TEST(Storage, RejectsBadModel) {
  const auto bench = proteins::generate_benchmark({});
  StorageModel m;
  m.compression_ratio = 0.0;
  EXPECT_THROW(estimate_storage(bench, m), hcmd::ConfigError);
}

TEST(Storage, FormatGb) {
  EXPECT_EQ(format_gb(123.4e9), "123.4 GB");
}

}  // namespace
}  // namespace hcmd::results
