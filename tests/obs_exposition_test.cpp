#include "obs/exposition.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hcmd::obs {
namespace {

TEST(Exposition, SanitizeMapsDotsToUnderscores) {
  EXPECT_EQ(Exposition::sanitize("hcmd_", "rpc.issue_wait_seconds"),
            "hcmd_rpc_issue_wait_seconds");
  EXPECT_EQ(Exposition::sanitize("", "a-b c/d"), "a_b_c_d");
  EXPECT_EQ(Exposition::sanitize("p_", "ok_name9"), "p_ok_name9");
}

TEST(Exposition, CountersAccumulateAndRenderSorted) {
  Exposition e;
  e.add_counter("zeta", 2);
  e.add_counter("alpha", 40);
  e.add_counter("alpha", 2);
  const std::string text = e.prometheus("t_");
  const std::string expected =
      "# TYPE t_alpha_total counter\n"
      "t_alpha_total 42\n"
      "# TYPE t_zeta_total counter\n"
      "t_zeta_total 2\n";
  EXPECT_EQ(text, expected);
}

TEST(Exposition, GaugesOverwriteNotAccumulate) {
  Exposition e;
  e.add_gauge("temp", 1.5);
  e.add_gauge("temp", 2.5);
  const std::string text = e.prometheus("t_");
  EXPECT_NE(text.find("# TYPE t_temp gauge\nt_temp 2.5\n"),
            std::string::npos);
  EXPECT_EQ(text.find("1.5"), std::string::npos);
}

TEST(Exposition, HistogramRendersSummaryWithQuantiles) {
  Exposition e;
  LogHistogram h;
  h.record(1.0);
  h.record(2.0);
  e.add_histogram("lat.seconds", h);
  const std::string text = e.prometheus("t_");
  EXPECT_NE(text.find("# TYPE t_lat_seconds summary"), std::string::npos);
  for (const char* q : {"0.5", "0.9", "0.99", "0.999"})
    EXPECT_NE(text.find("t_lat_seconds{quantile=\"" + std::string(q) +
                        "\"} "),
              std::string::npos)
        << q;
  EXPECT_NE(text.find("t_lat_seconds_sum 3\n"), std::string::npos);
  EXPECT_NE(text.find("t_lat_seconds_count 2\n"), std::string::npos);
}

TEST(Exposition, AddHistogramMergesUnderOneName) {
  Exposition e;
  LogHistogram a;
  a.record(1.0);
  LogHistogram b;
  b.record(3.0);
  e.add_histogram("h", a);
  e.add_histogram("h", b);
  const std::string text = e.prometheus("t_");
  EXPECT_NE(text.find("t_h_sum 4\n"), std::string::npos);
  EXPECT_NE(text.find("t_h_count 2\n"), std::string::npos);
}

TEST(Exposition, AbsorbPullsRegistryCountersAndHistograms) {
  Registry r;
  r.add(r.intern_counter("hits"), 7);
  r.observe(r.intern_histogram("wait"), 0.5);
  Exposition e;
  e.absorb(r);
  const std::string text = e.prometheus("t_");
  EXPECT_NE(text.find("t_hits_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("t_wait_count 1\n"), std::string::npos);
}

TEST(Exposition, DeterministicOutput) {
  // Two expositions built from identical state render byte-identically —
  // the snapshotter depends on this for cheap change detection.
  auto build = [] {
    Exposition e;
    e.add_counter("b", 1);
    e.add_counter("a", 2);
    e.add_gauge("g", 3.25);
    LogHistogram h;
    h.record(0.125);
    e.add_histogram("lat", h);
    return e;
  };
  EXPECT_EQ(build().prometheus(), build().prometheus());
  EXPECT_EQ(build().json(), build().json());
}

TEST(Exposition, JsonSnapshotShape) {
  Exposition e;
  e.add_counter("hits", 3);
  e.add_gauge("scale", 2.0);
  LogHistogram h;
  h.record(1.0);
  e.add_histogram("lat", h);
  const std::string doc = e.json();
  EXPECT_NE(doc.find("\"kind\":\"hcmd-metrics-snapshot\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"hits\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"scale\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"lat\":{\"count\":1"), std::string::npos);
}

TEST(Exposition, EmptyRendersEmpty) {
  const Exposition e;
  EXPECT_EQ(e.prometheus(), "");
  const std::string doc = e.json();
  EXPECT_NE(doc.find("\"counters\":{}"), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\":{}"), std::string::npos);
}

}  // namespace
}  // namespace hcmd::obs
