// Integration: failure injection — the campaign must degrade gracefully,
// never deadlock, and keep its books balanced when the grid misbehaves.
#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "util/duration.hpp"

namespace hcmd::core {
namespace {

CampaignConfig coarse_config() {
  CampaignConfig config;
  config.scale = 0.004;
  return config;
}

TEST(FailureInjection, HardDeadlineEndsIncomplete) {
  CampaignConfig config = coarse_config();
  config.max_weeks = 4.0;  // far too short
  const CampaignReport r = run_campaign(config);
  EXPECT_FALSE(r.completed);
  EXPECT_DOUBLE_EQ(r.completion_weeks, 4.0);
  EXPECT_LT(r.counters.workunits_completed,
            static_cast<std::uint64_t>(r.full_workunit_count));
  // Books still balance (clean quorum members may still be pending when
  // the deadline cuts the run short).
  EXPECT_EQ(r.counters.results_received,
            r.counters.results_valid + r.counters.results_quorum_extra +
                r.counters.results_invalid + r.counters.results_redundant +
                r.counters.results_pending);
}

TEST(FailureInjection, AllResultsErroneousNeverCompletes) {
  CampaignConfig config = coarse_config();
  config.devices.result_error_rate = 1.0;
  config.max_weeks = 8.0;
  const CampaignReport r = run_campaign(config);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.counters.results_valid, 0u);
  EXPECT_GT(r.counters.results_invalid, 0u);
  EXPECT_EQ(r.counters.workunits_completed, 0u);
}

TEST(FailureInjection, EphemeralFleetStillMakesProgress) {
  // Devices die after ~5 days on average; replacement arrivals keep the
  // fleet alive and the server's timeout machinery recovers lost work.
  CampaignConfig config = coarse_config();
  config.devices.lifetime_mean_days = 5.0;
  config.max_weeks = 40.0;
  const CampaignReport r = run_campaign(config);
  EXPECT_GT(r.counters.workunits_completed, 0u);
  EXPECT_GT(r.counters.results_timed_out, 0u);  // deaths leave stragglers
  EXPECT_GE(r.counters.results_sent, r.counters.results_received);
}

TEST(FailureInjection, ConstantlyPausingVolunteers) {
  // Half of all workunits trigger multi-week pauses: a large slice of the
  // fleet is dormant at any moment, so the campaign crawls — it must still
  // degrade gracefully (progress, balanced books, elevated redundancy from
  // the timeout/late-upload churn), not deadlock.
  CampaignConfig config = coarse_config();
  config.devices.abandon_rate = 0.5;
  config.max_weeks = 60.0;
  const CampaignReport r = run_campaign(config);
  EXPECT_GT(r.counters.workunits_completed, 0u);
  EXPECT_GT(r.redundancy_factor, 1.4);
  EXPECT_EQ(r.counters.results_received,
            r.counters.results_valid + r.counters.results_quorum_extra +
                r.counters.results_invalid + r.counters.results_redundant +
                r.counters.results_pending);
  // Strictly slower than the healthy baseline at the same scale.
  CampaignConfig healthy = coarse_config();
  const CampaignReport h = run_campaign(healthy);
  EXPECT_LT(static_cast<double>(r.counters.workunits_completed) /
                std::max(1.0, r.completion_weeks),
            static_cast<double>(h.counters.workunits_completed) /
                std::max(1.0, h.completion_weeks));
}

TEST(FailureInjection, TinyGridFinishesEventually) {
  CampaignConfig config = coarse_config();
  config.population.vftp_at_reference = 8'000.0;  // ~10x smaller grid
  config.max_weeks = 300.0;
  const CampaignReport r = run_campaign(config);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.completion_weeks, 60.0);  // far beyond the paper's 26 weeks
}

TEST(FailureInjection, ZeroSpotCheckAndQuorumStillValidates) {
  CampaignConfig config = coarse_config();
  config.server.validation.quorum2_until = 0.0;
  config.server.validation.spot_check_fraction = 0.0;
  const CampaignReport r = run_campaign(config);
  EXPECT_TRUE(r.completed);
  // Redundancy now comes only from timeouts/errors/late uploads.
  EXPECT_LT(r.redundancy_factor, 1.25);
}

TEST(FailureInjection, ShortDeadlineRaisesChurnNotDeadlock) {
  CampaignConfig config = coarse_config();
  config.server.deadline = 1.5 * util::kSecondsPerDay;
  config.max_weeks = 60.0;
  const CampaignReport r = run_campaign(config);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.counters.results_timed_out, 0u);
  EXPECT_GT(r.redundancy_factor, 1.3);
}

}  // namespace
}  // namespace hcmd::core
