#include "docking/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "docking/cell_list.hpp"
#include "docking/minimizer.hpp"
#include "proteins/generator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hcmd::docking {
namespace {

using proteins::Dof6;
using proteins::ReducedProtein;

void expect_energies_near(const InteractionEnergy& a,
                          const InteractionEnergy& b, double rel) {
  const double scale = std::max({1.0, std::abs(a.lj), std::abs(a.elec)});
  EXPECT_NEAR(a.lj, b.lj, rel * scale);
  EXPECT_NEAR(a.elec, b.elec, rel * scale);
}

TEST(Engine, RejectsNonPositiveCutoff) {
  const auto receptor = proteins::generate_protein(1, 40, 1.0, 51);
  const auto ligand = proteins::generate_protein(2, 30, 1.0, 52);
  EnergyParams params;
  params.cutoff = 0.0;
  EXPECT_THROW(DockingEngine(receptor, ligand, params), hcmd::ConfigError);
}

TEST(Engine, CopiesProteinsIntoSoA) {
  const auto receptor = proteins::generate_protein(1, 120, 1.0, 53);
  const auto ligand = proteins::generate_protein(2, 45, 1.0, 54);
  const DockingEngine engine(receptor, ligand, EnergyParams{});
  EXPECT_EQ(engine.receptor_size(), receptor.size());
  EXPECT_EQ(engine.ligand_size(), ligand.size());
  EXPECT_GE(engine.cell_count(), 1u);
}

TEST(Engine, ScratchReuseGivesIdenticalResults) {
  const auto receptor = proteins::generate_protein(1, 150, 1.0, 55);
  const auto ligand = proteins::generate_protein(2, 50, 1.1, 56);
  const DockingEngine engine(receptor, ligand, EnergyParams{});
  DockingEngine::Scratch scratch = engine.make_scratch();
  Dof6 pose;
  pose.x = receptor.bounding_radius() + 3.0;
  const auto first = engine.energy(pose.to_transform(), scratch);
  // Intervening evaluation at another pose dirties the scratch.
  Dof6 other = pose;
  other.y += 5.0;
  engine.energy(other.to_transform(), scratch);
  const auto again = engine.energy(pose.to_transform(), scratch);
  EXPECT_EQ(first.lj, again.lj);
  EXPECT_EQ(first.elec, again.elec);
}

TEST(Engine, NominalWorkIsBackendIndependent) {
  const auto receptor = proteins::generate_protein(1, 300, 1.2, 57);
  const auto ligand = proteins::generate_protein(2, 60, 1.0, 58);
  const EnergyParams params;
  const DockingEngine flat(receptor, ligand, params,
                           {EnergyBackend::kFlat});
  const DockingEngine cells(receptor, ligand, params,
                            {EnergyBackend::kCellList});
  Dof6 pose;
  pose.x = receptor.bounding_radius() + 2.0;
  WorkCounter flat_work, cell_work, reference_work;
  DockingEngine::Scratch flat_scratch = flat.make_scratch();
  DockingEngine::Scratch cell_scratch = cells.make_scratch();
  flat.energy(pose.to_transform(), flat_scratch, &flat_work);
  cells.energy(pose.to_transform(), cell_scratch, &cell_work);
  interaction_energy(receptor, ligand, pose.to_transform(), params,
                     &reference_work);
  EXPECT_EQ(flat_work.pair_terms, reference_work.pair_terms);
  EXPECT_EQ(cell_work.pair_terms, reference_work.pair_terms);
  EXPECT_EQ(flat_work.within_cutoff_pairs,
            reference_work.within_cutoff_pairs);
  EXPECT_EQ(cell_work.within_cutoff_pairs,
            reference_work.within_cutoff_pairs);
  EXPECT_LE(cell_work.inspected_pairs, flat_work.inspected_pairs);
}

TEST(Engine, PoseFullyOutsideReceptorBoxIsZero) {
  const auto receptor = proteins::generate_protein(1, 100, 1.0, 59);
  const auto ligand = proteins::generate_protein(2, 40, 1.0, 60);
  const EnergyParams params;
  const DockingEngine engine(receptor, ligand, params);
  Dof6 pose;
  pose.x = receptor.bounding_radius() + ligand.bounding_radius() +
           3.0 * params.cutoff;
  DockingEngine::Scratch scratch = engine.make_scratch();
  const auto e = engine.energy(pose.to_transform(), scratch);
  EXPECT_DOUBLE_EQ(e.lj, 0.0);
  EXPECT_DOUBLE_EQ(e.elec, 0.0);
}

/// Satellite requirement: flat sweep, cell list, and both engine backends
/// agree on InteractionEnergy to 1e-9 relative across randomized poses and
/// protein sizes, including poses fully outside the receptor box.
struct SweepCase {
  std::uint32_t receptor_atoms;
  std::uint32_t ligand_atoms;
  int pose_seed;
};

class EngineEquivalenceSweep
    : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EngineEquivalenceSweep, AllBackendsAgree) {
  const SweepCase c = GetParam();
  const auto receptor =
      proteins::generate_protein(1, c.receptor_atoms, 1.3, 61);
  const auto ligand = proteins::generate_protein(2, c.ligand_atoms, 1.0, 62);
  const EnergyParams params;
  const ReceptorCellGrid grid(receptor, params.cutoff);
  const DockingEngine engine_flat(receptor, ligand, params,
                                  {EnergyBackend::kFlat});
  const DockingEngine engine_cells(receptor, ligand, params,
                                   {EnergyBackend::kCellList});
  DockingEngine::Scratch flat_scratch = engine_flat.make_scratch();
  DockingEngine::Scratch cell_scratch = engine_cells.make_scratch();

  util::Rng rng(4000 + static_cast<std::uint64_t>(c.pose_seed));
  for (int k = 0; k < 4; ++k) {
    Dof6 pose;
    // Spread poses from deep overlap to fully outside the receptor box
    // (the factor 2.5 pushes some ligand atoms beyond cutoff range).
    const double reach = 2.5 * receptor.bounding_radius() + params.cutoff;
    pose.x = rng.uniform(-1.0, 1.0) * reach;
    pose.y = rng.uniform(-1.0, 1.0) * reach;
    pose.z = rng.uniform(-1.0, 1.0) * reach;
    pose.alpha = rng.uniform(0.0, 6.28);
    pose.beta = rng.uniform(0.0, 3.14);
    pose.gamma = rng.uniform(0.0, 6.28);

    const auto reference = interaction_energy(receptor, ligand,
                                              pose.to_transform(), params);
    const auto via_grid =
        grid.interaction_energy(ligand, pose.to_transform(), params);
    const auto via_flat = engine_flat.energy(pose.to_transform(), flat_scratch);
    const auto via_cells =
        engine_cells.energy(pose.to_transform(), cell_scratch);

    expect_energies_near(reference, via_grid, 1e-9);
    expect_energies_near(reference, via_flat, 1e-9);
    expect_energies_near(reference, via_cells, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, EngineEquivalenceSweep,
    ::testing::Values(SweepCase{40, 25, 0}, SweepCase{40, 25, 1},
                      SweepCase{200, 80, 2}, SweepCase{200, 80, 3},
                      SweepCase{650, 120, 4}, SweepCase{650, 120, 5},
                      SweepCase{1500, 60, 6}));

TEST(EngineMinimize, DeterministicAndImproving) {
  const auto receptor = proteins::generate_protein(1, 90, 1.0, 63);
  const auto ligand = proteins::generate_protein(2, 50, 1.1, 64);
  const DockingEngine engine(receptor, ligand, EnergyParams{});
  Dof6 start;
  start.x = receptor.bounding_radius() + ligand.bounding_radius() + 4.0;
  MinimizerParams params;
  params.max_iterations = 15;

  DockingEngine::Scratch scratch = engine.make_scratch();
  const double start_energy =
      engine.energy(start.to_transform(), scratch).total();
  const MinimizationResult a = minimize(engine, start, params, scratch);
  const MinimizationResult b = minimize(engine, start, params, scratch);
  EXPECT_LE(a.energy.total(), start_energy);
  EXPECT_EQ(a.energy.lj, b.energy.lj);
  EXPECT_EQ(a.energy.elec, b.energy.elec);
  EXPECT_EQ(a.pose.x, b.pose.x);
}

TEST(EngineMinimize, WorkCounterMatchesEvaluationCount) {
  const auto receptor = proteins::generate_protein(1, 60, 1.0, 65);
  const auto ligand = proteins::generate_protein(2, 40, 1.0, 66);
  const DockingEngine engine(receptor, ligand, EnergyParams{});
  Dof6 start;
  start.x = receptor.bounding_radius() + 4.0;
  MinimizerParams params;
  params.max_iterations = 5;
  WorkCounter work;
  DockingEngine::Scratch scratch = engine.make_scratch();
  minimize(engine, start, params, scratch, &work);
  // 1 initial eval + per iteration: 12 gradient evals + 1 trial eval.
  EXPECT_GE(work.evaluations, 1u + 13u);
  EXPECT_LE(work.evaluations, 1u + 13u * 5u);
  EXPECT_EQ(work.pair_terms,
            work.evaluations * receptor.size() * ligand.size());
}

}  // namespace
}  // namespace hcmd::docking
