#include "server/server.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hcmd::server {
namespace {

std::vector<packaging::Workunit> make_catalog(std::size_t n,
                                              double ref_seconds = 3600.0) {
  std::vector<packaging::Workunit> catalog;
  for (std::size_t i = 0; i < n; ++i) {
    packaging::Workunit wu;
    wu.id = i;
    wu.receptor = static_cast<std::uint32_t>(i % 4);
    wu.ligand = static_cast<std::uint32_t>(i % 3);
    wu.isep_begin = 0;
    wu.isep_end = 10;
    wu.reference_seconds = ref_seconds;
    catalog.push_back(wu);
  }
  return catalog;
}

/// A config with no redundancy at all, for deterministic lifecycle tests.
ServerConfig plain_config() {
  ServerConfig cfg;
  cfg.validation.quorum2_until = 0.0;
  cfg.validation.spot_check_fraction = 0.0;
  cfg.endgame_max_outstanding = 0;
  return cfg;
}

ResultReport ok_report(double runtime = 1000.0, double ref = 3600.0) {
  ResultReport r;
  r.reported_runtime = runtime;
  r.reference_seconds = ref;
  return r;
}

TEST(Server, RejectsEmptyCatalog) {
  EXPECT_THROW(ProjectServer({}, plain_config()), hcmd::ConfigError);
}

TEST(Server, IssuesInCatalogOrder) {
  ProjectServer server(make_catalog(5), plain_config());
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto a = server.request_work(1, 0.0);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->workunit.id, i);
  }
  EXPECT_FALSE(server.request_work(1, 0.0).has_value());
}

TEST(Server, SingleResultCompletesWorkunit) {
  ProjectServer server(make_catalog(1), plain_config());
  const auto a = server.request_work(1, 0.0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(server.workunit_state(0), WorkunitState::kInProgress);
  EXPECT_EQ(server.report_result(a->result_id, 100.0, ok_report()),
            ResultState::kValid);
  EXPECT_EQ(server.workunit_state(0), WorkunitState::kDone);
  EXPECT_TRUE(server.complete());
  const auto& c = server.counters();
  EXPECT_EQ(c.results_valid, 1u);
  EXPECT_EQ(c.workunits_completed, 1u);
  EXPECT_DOUBLE_EQ(c.useful_reference_seconds, 3600.0);
  EXPECT_DOUBLE_EQ(c.reported_runtime_seconds, 1000.0);
}

TEST(Server, InvalidResultTriggersReissue) {
  ProjectServer server(make_catalog(1), plain_config());
  const auto a = server.request_work(1, 0.0);
  ResultReport bad;
  bad.computation_error = true;
  EXPECT_EQ(server.report_result(a->result_id, 50.0, bad),
            ResultState::kInvalid);
  EXPECT_FALSE(server.complete());
  // The re-issue goes out on the next request.
  const auto b = server.request_work(2, 60.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->workunit.id, 0u);
  server.report_result(b->result_id, 120.0, ok_report());
  EXPECT_TRUE(server.complete());
  EXPECT_EQ(server.counters().results_invalid, 1u);
}

TEST(Server, DeadlineTimeoutReissues) {
  ServerConfig cfg = plain_config();
  cfg.deadline = 100.0;
  ProjectServer server(make_catalog(1), cfg);
  const auto a = server.request_work(1, 0.0);
  EXPECT_FALSE(server.handle_deadline(a->result_id, 50.0));  // too early
  EXPECT_TRUE(server.handle_deadline(a->result_id, 100.0));
  EXPECT_FALSE(server.handle_deadline(a->result_id, 200.0));  // already fired
  EXPECT_EQ(server.counters().results_timed_out, 1u);
  const auto b = server.request_work(2, 150.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->workunit.id, 0u);
}

TEST(Server, LateResultAfterTimeoutStillCounts) {
  // "when the agent reconnects and sends back the result ... this result is
  // taken into account even if the result has already been computed".
  ServerConfig cfg = plain_config();
  cfg.deadline = 100.0;
  ProjectServer server(make_catalog(1), cfg);
  const auto a = server.request_work(1, 0.0);
  server.handle_deadline(a->result_id, 100.0);
  const auto b = server.request_work(2, 110.0);
  server.report_result(b->result_id, 200.0, ok_report());
  EXPECT_TRUE(server.complete());
  // Now the original, very late upload arrives: received but redundant.
  EXPECT_EQ(server.report_result(a->result_id, 5000.0, ok_report()),
            ResultState::kRedundant);
  const auto& c = server.counters();
  EXPECT_EQ(c.results_received, 2u);
  EXPECT_EQ(c.results_valid, 1u);
  EXPECT_EQ(c.results_redundant, 1u);
  EXPECT_DOUBLE_EQ(c.redundancy_factor(), 2.0);
  EXPECT_DOUBLE_EQ(c.useful_fraction(), 0.5);
}

TEST(Server, LateResultCanStillCompleteWorkunit) {
  ServerConfig cfg = plain_config();
  cfg.deadline = 100.0;
  ProjectServer server(make_catalog(1), cfg);
  const auto a = server.request_work(1, 0.0);
  server.handle_deadline(a->result_id, 100.0);
  // No one else computed it; the late original completes the workunit.
  EXPECT_EQ(server.report_result(a->result_id, 500.0, ok_report()),
            ResultState::kValid);
  EXPECT_TRUE(server.complete());
}

TEST(Server, QuorumTwoNeedsBothResults) {
  ServerConfig cfg = plain_config();
  cfg.validation.quorum2_until = 1e9;  // whole test in quorum-2 regime
  ProjectServer server(make_catalog(1), cfg);
  const auto a = server.request_work(1, 0.0);
  const auto b = server.request_work(2, 0.0);  // second copy of WU 0
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->workunit.id, b->workunit.id);
  // The first clean result is held for comparison.
  EXPECT_EQ(server.report_result(a->result_id, 100.0, ok_report()),
            ResultState::kPendingValidation);
  EXPECT_EQ(server.counters().results_pending, 1u);
  EXPECT_FALSE(server.complete());  // one of two
  EXPECT_EQ(server.report_result(b->result_id, 120.0, ok_report()),
            ResultState::kValid);
  EXPECT_TRUE(server.complete());
  const auto& c = server.counters();
  EXPECT_EQ(c.results_valid, 1u);         // canonical
  EXPECT_EQ(c.results_quorum_extra, 1u);  // the comparison partner
  EXPECT_EQ(c.results_pending, 0u);
  // The held partner was promoted to valid.
  EXPECT_EQ(server.result(a->result_id).state, ResultState::kValid);
  EXPECT_DOUBLE_EQ(c.redundancy_factor(), 2.0);
}

TEST(Server, SpotCheckIssuesSecondCopy) {
  ServerConfig cfg = plain_config();
  cfg.validation.spot_check_fraction = 1.0;  // every WU double-issued
  ProjectServer server(make_catalog(2), cfg);
  const auto a = server.request_work(1, 0.0);
  const auto b = server.request_work(2, 0.0);
  EXPECT_EQ(a->workunit.id, b->workunit.id);  // the extra copy goes first
  // Quorum is still 1: the first result completes the workunit.
  server.report_result(a->result_id, 10.0, ok_report());
  EXPECT_EQ(server.workunit_state(0), WorkunitState::kDone);
  // And the spot-check copy comes back redundant.
  EXPECT_EQ(server.report_result(b->result_id, 20.0, ok_report()),
            ResultState::kRedundant);
}

TEST(Server, EndgameDuplicatesStragglers) {
  ServerConfig cfg = plain_config();
  cfg.endgame_max_outstanding = 3;
  ProjectServer server(make_catalog(1), cfg);
  const auto a = server.request_work(1, 0.0);
  ASSERT_TRUE(a.has_value());
  // No fresh work left, but end-game hands out extra copies up to the cap.
  const auto b = server.request_work(2, 10.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->workunit.id, 0u);
  const auto c = server.request_work(3, 20.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_FALSE(server.request_work(4, 30.0).has_value());  // cap reached
  // First arrival completes it; the others are redundant.
  server.report_result(a->result_id, 100.0, ok_report());
  EXPECT_TRUE(server.complete());
  EXPECT_EQ(server.report_result(b->result_id, 110.0, ok_report()),
            ResultState::kRedundant);
}

TEST(Server, EndgameDisabledGivesNothing) {
  ProjectServer server(make_catalog(1), plain_config());
  server.request_work(1, 0.0);
  EXPECT_FALSE(server.request_work(2, 1.0).has_value());
}

TEST(Server, CompletedPositionsPerReceptor) {
  ProjectServer server(make_catalog(8), plain_config());
  // Complete the first 3 workunits (receptors 0, 1, 2; 10 positions each).
  for (int i = 0; i < 3; ++i) {
    const auto a = server.request_work(1, 0.0);
    server.report_result(a->result_id, 10.0, ok_report());
  }
  const auto per = server.completed_positions_per_receptor(4);
  EXPECT_EQ(per[0], 10u);
  EXPECT_EQ(per[1], 10u);
  EXPECT_EQ(per[2], 10u);
  EXPECT_EQ(per[3], 0u);
}

TEST(Server, ReferenceSecondsPerReceptor) {
  ProjectServer server(make_catalog(4, 100.0), plain_config());
  const auto totals = server.total_reference_seconds_per_receptor(4);
  for (double t : totals) EXPECT_DOUBLE_EQ(t, 100.0);
  const auto a = server.request_work(1, 0.0);
  server.report_result(a->result_id, 10.0, ok_report(10.0, 100.0));
  const auto done = server.completed_reference_seconds_per_receptor(4);
  EXPECT_DOUBLE_EQ(done[0], 100.0);
  EXPECT_DOUBLE_EQ(done[1], 0.0);
}

TEST(Server, ResultInstanceBookkeeping) {
  ServerConfig cfg = plain_config();
  cfg.deadline = 500.0;
  ProjectServer server(make_catalog(1), cfg);
  const auto a = server.request_work(9, 100.0);
  const ResultInstance& inst = server.result(a->result_id);
  EXPECT_EQ(inst.device_id, 9u);
  EXPECT_DOUBLE_EQ(inst.sent_time, 100.0);
  EXPECT_DOUBLE_EQ(inst.deadline, 600.0);
  EXPECT_EQ(inst.state, ResultState::kInProgress);
  server.report_result(a->result_id, 250.0, ok_report(42.0));
  EXPECT_DOUBLE_EQ(server.result(a->result_id).received_time, 250.0);
  EXPECT_DOUBLE_EQ(server.result(a->result_id).reported_runtime, 42.0);
}

TEST(Server, DoubleReportIsALogicError) {
  ProjectServer server(make_catalog(1), plain_config());
  const auto a = server.request_work(1, 0.0);
  server.report_result(a->result_id, 10.0, ok_report());
  EXPECT_THROW(server.report_result(a->result_id, 20.0, ok_report()),
               std::logic_error);
}

TEST(Server, WorkunitsRemaining) {
  ProjectServer server(make_catalog(3), plain_config());
  EXPECT_EQ(server.workunits_remaining(), 3u);
  const auto a = server.request_work(1, 0.0);
  server.report_result(a->result_id, 10.0, ok_report());
  EXPECT_EQ(server.workunits_remaining(), 2u);
}

}  // namespace
}  // namespace hcmd::server
