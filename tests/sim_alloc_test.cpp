// Asserts the DES core's zero-allocation guarantee: once the arena and
// heap are at their high-water mark, schedule / cancel / fire (one-shot
// and periodic) perform no heap allocation at all.
//
// This test overrides the global allocation functions to count calls, so
// it lives in its own binary: the counters see every allocation in the
// process, including the ones gtest itself makes outside the measured
// windows.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

struct AllocationWindow {
  std::uint64_t start = g_allocations.load();
  std::uint64_t count() const { return g_allocations.load() - start; }
};

}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) -
                                    1) &
                                       ~(static_cast<std::size_t>(align) - 1)))
    return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace hcmd::sim {
namespace {

TEST(SimulationAllocation, SteadyStateScheduleFireIsAllocationFree) {
  Simulation sim;
  util::Rng rng(7);
  std::uint64_t fired = 0;
  // Callable with a capture large enough to be representative (24 bytes)
  // yet inside SmallFn's inline buffer.
  struct Cb {
    std::uint64_t* fired;
    double a, b;
    void operator()() const { ++*fired; }
  };
  const Cb cb{&fired, 1.0, 2.0};

  // Reach the high-water mark: arena, heap, and free list all sized.
  constexpr std::size_t kDepth = 4096;
  for (std::size_t i = 0; i < kDepth; ++i)
    sim.schedule_at(rng.uniform(0.0, 100.0), cb);
  for (std::size_t i = 0; i < kDepth / 2; ++i) sim.step();

  // Steady state: every schedule and fire below must reuse pooled slots.
  AllocationWindow window;
  for (std::size_t i = 0; i < 100'000; ++i) {
    sim.schedule_at(sim.now() + rng.uniform(0.0, 100.0), cb);
    sim.step();
  }
  EXPECT_EQ(window.count(), 0u)
      << "schedule/fire churn allocated in steady state";
  EXPECT_GT(fired, 0u);
}

TEST(SimulationAllocation, SteadyStateCancelIsAllocationFree) {
  Simulation sim;
  util::Rng rng(11);
  struct Cb {
    std::uint64_t* fired;
    double a, b;
    void operator()() const { ++*fired; }
  };
  std::uint64_t fired = 0;
  const Cb cb{&fired, 1.0, 2.0};

  constexpr std::size_t kDepth = 2048;
  std::vector<EventHandle> handles(kDepth);
  for (std::size_t i = 0; i < kDepth; ++i)
    handles[i] = sim.schedule_at(rng.uniform(0.0, 100.0), cb);

  AllocationWindow window;
  for (std::size_t round = 0; round < 50'000; ++round) {
    const std::size_t i = round % kDepth;
    handles[i].cancel();  // EventHandle ops never allocate
    handles[i] = sim.schedule_at(sim.now() + rng.uniform(0.0, 100.0), cb);
    if (round % 2 == 0) sim.step();
  }
  EXPECT_EQ(window.count(), 0u)
      << "schedule/cancel churn allocated in steady state";
}

TEST(SimulationAllocation, PeriodicReArmIsAllocationFree) {
  Simulation sim;
  std::uint64_t ticks = 0;
  for (int s = 0; s < 64; ++s) {
    sim.schedule_periodic(0.5 + 0.01 * s, 1.0, [&ticks](SimTime) {
      ++ticks;
      return true;
    });
  }
  sim.run_until(10.0);  // high-water mark reached

  AllocationWindow window;
  sim.run_until(10'000.0);  // ~640k in-place re-arms
  EXPECT_EQ(window.count(), 0u) << "periodic re-arm allocated";
  EXPECT_GT(ticks, 600'000u);
}

TEST(SimulationAllocation, ReserveEventsMakesColdBurstAllocationFree) {
  Simulation sim;
  sim.reserve_events(10'000);
  struct Cb {
    std::uint64_t* fired;
    void operator()() const { ++*fired; }
  };
  std::uint64_t fired = 0;
  const Cb cb{&fired};

  AllocationWindow window;
  for (std::size_t i = 0; i < 10'000; ++i)
    sim.schedule_at(static_cast<double>(i), cb);
  sim.run_until();
  EXPECT_EQ(window.count(), 0u) << "burst within reservation allocated";
  EXPECT_EQ(fired, 10'000u);
}

}  // namespace
}  // namespace hcmd::sim
