// The pluggable validation-policy layer: the reputation ledger's score
// dynamics (credit, hard reset, half-life decay), deterministic spot
// checks, quorum escalation for untrusted devices, the policy spec parser,
// and the preset-vs-shipped-file lockstep.
#include "server/validation_policy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "server/server.hpp"
#include "util/duration.hpp"
#include "util/error.hpp"

namespace hcmd::server {
namespace {

using util::kSecondsPerDay;

AdaptiveTrustConfig ledger_config() {
  AdaptiveTrustConfig cfg;
  cfg.trust_gain = 0.5;
  cfg.trust_threshold = 0.3;
  cfg.half_life_days = 180.0;
  cfg.spot_check_every = 4;
  return cfg;
}

TEST(ReputationLedger, CreditIsSaturatingAndPromotesOnce) {
  AdaptiveTrustPolicy p(ledger_config(), /*salt=*/1);
  EXPECT_FALSE(p.device_trusted(7, 0.0));
  p.on_result(7, 0.0, ResultEvent::kQuorumVerified);
  // s <- 0 + 0.5 * (1 - 0): one clean quorum round crosses the threshold.
  EXPECT_DOUBLE_EQ(p.score(7, 0.0), 0.5);
  EXPECT_TRUE(p.device_trusted(7, 0.0));
  EXPECT_EQ(p.counters().trust_promotions, 1u);
  // Saturating towards 1: 0.5 -> 0.75 -> 0.875, no second promotion.
  p.on_result(7, 0.0, ResultEvent::kPartnerVerified);
  p.on_result(7, 0.0, ResultEvent::kCanonicalConfirmed);
  EXPECT_DOUBLE_EQ(p.score(7, 0.0), 0.875);
  EXPECT_EQ(p.counters().trust_promotions, 1u);
}

TEST(ReputationLedger, ScoreDecaysWithConfiguredHalfLife) {
  AdaptiveTrustPolicy p(ledger_config(), /*salt=*/1);
  p.on_result(3, 0.0, ResultEvent::kQuorumVerified);  // score 0.5 at t=0
  const double half_life = 180.0 * kSecondsPerDay;
  EXPECT_DOUBLE_EQ(p.score(3, half_life), 0.25);
  EXPECT_DOUBLE_EQ(p.score(3, 2.0 * half_life), 0.125);
  // Trust expires when the decayed score crosses the 0.3 threshold:
  // 0.5 * 2^(-t/hl) = 0.3 at t = hl * log2(5/3) ~ 132.7 days.
  const double expiry = half_life * std::log2(0.5 / 0.3);
  EXPECT_TRUE(p.device_trusted(3, expiry - 60.0));
  EXPECT_FALSE(p.device_trusted(3, expiry + 60.0));
}

TEST(ReputationLedger, SingleMismatchResetsToUntrusted) {
  AdaptiveTrustPolicy p(ledger_config(), /*salt=*/1);
  // Build a device up to a strong score...
  for (int i = 0; i < 4; ++i)
    p.on_result(5, 0.0, ResultEvent::kQuorumVerified);
  EXPECT_GT(p.score(5, 0.0), 0.9);
  // ...one contradiction wipes it: hard reset, not a decrement.
  p.on_result(5, 1.0, ResultEvent::kQuorumMismatch);
  EXPECT_DOUBLE_EQ(p.score(5, 1.0), 0.0);
  EXPECT_FALSE(p.device_trusted(5, 1.0));
  EXPECT_EQ(p.counters().trust_demotions, 1u);
  // Partner-side contradictions penalise just the same.
  p.on_result(5, 2.0, ResultEvent::kQuorumVerified);
  EXPECT_TRUE(p.device_trusted(5, 2.0));
  p.on_result(5, 3.0, ResultEvent::kPartnerMismatch);
  EXPECT_FALSE(p.device_trusted(5, 3.0));
}

TEST(ReputationLedger, UnverifiedResultsEarnNoCredibility) {
  AdaptiveTrustPolicy p(ledger_config(), /*salt=*/1);
  // A saboteur's output looks clean until compared: range-check acceptance
  // and pending-quorum returns must not move the score.
  p.on_result(9, 0.0, ResultEvent::kAssimilatedUnverified);
  p.on_result(9, 0.0, ResultEvent::kPendingQuorum);
  EXPECT_DOUBLE_EQ(p.score(9, 0.0), 0.0);
  EXPECT_FALSE(p.device_trusted(9, 0.0));
}

TEST(ReputationLedger, SpotChecksAreDeterministicAcrossReplays) {
  // Same salt -> the same device produces the same 1-in-K spot-check
  // pattern on replay, decision for decision.
  util::Rng rng(99);
  for (std::uint32_t device : {0u, 11u, 200u}) {
    AdaptiveTrustPolicy a(ledger_config(), /*salt=*/0xfeed);
    AdaptiveTrustPolicy b(ledger_config(), /*salt=*/0xfeed);
    a.on_result(device, 0.0, ResultEvent::kQuorumVerified);
    b.on_result(device, 0.0, ResultEvent::kQuorumVerified);
    std::uint32_t spot_a = 0;
    std::uint32_t spot_b = 0;
    for (int i = 0; i < 32; ++i) {
      const IssueDecision da = a.on_first_issue(device, 1.0, rng);
      const IssueDecision db = b.on_first_issue(device, 1.0, rng);
      EXPECT_EQ(da.quorum_needed, db.quorum_needed);
      EXPECT_EQ(da.target_issues, db.target_issues);
      spot_a += (da.quorum_needed == 1 && da.target_issues == 2) ? 1u : 0u;
      spot_b += (db.quorum_needed == 1 && db.target_issues == 2) ? 1u : 0u;
    }
    // Exactly 1 in K of a trusted device's decisions are spot checks.
    EXPECT_EQ(spot_a, 32u / ledger_config().spot_check_every);
    EXPECT_EQ(spot_a, spot_b);
  }
}

TEST(ReputationLedger, EscalatesQuorumOnlyForUntrustedDevices) {
  AdaptiveTrustPolicy p(ledger_config(), /*salt=*/1);
  p.on_result(1, 0.0, ResultEvent::kQuorumVerified);  // device 1 trusted
  // A re-issued / extra / end-game copy handed to an untrusted device
  // escalates the workunit to quorum-2; a trusted device leaves it alone.
  EXPECT_EQ(p.escalate_quorum(1, 1.0, 1), 1);
  EXPECT_EQ(p.escalate_quorum(2, 1.0, 1), 2);
  EXPECT_EQ(p.counters().escalations, 1u);
  // Already at quorum-2: nothing to do either way.
  EXPECT_EQ(p.escalate_quorum(2, 1.0, 2), 2);
  EXPECT_EQ(p.counters().escalations, 1u);
}

TEST(ReputationLedger, AdaptivePolicyNeverDrawsFromServerStream) {
  // The determinism contract: adding the adaptive policy to a run must not
  // perturb the server's RNG stream (its spot checks are counter-hashed,
  // not drawn). Replaying identical calls against two policies around the
  // same Rng must leave the stream untouched.
  util::Rng rng(7);
  util::Rng untouched(7);
  AdaptiveTrustPolicy p(ledger_config(), /*salt=*/42);
  p.on_result(0, 0.0, ResultEvent::kQuorumVerified);
  for (int i = 0; i < 16; ++i) p.on_first_issue(0, 1.0, rng);
  EXPECT_EQ(rng.next_u64(), untouched.next_u64());
}

// --- server-level behaviour -------------------------------------------------

std::vector<packaging::Workunit> make_catalog(std::size_t n) {
  std::vector<packaging::Workunit> catalog;
  for (std::size_t i = 0; i < n; ++i) {
    packaging::Workunit wu;
    wu.id = i;
    wu.receptor = 0;
    wu.ligand = 0;
    wu.isep_begin = 0;
    wu.isep_end = 10;
    wu.reference_seconds = 3600.0;
    catalog.push_back(wu);
  }
  return catalog;
}

ResultReport clean() {
  ResultReport r;
  r.reported_runtime = 100.0;
  r.reference_seconds = 3600.0;
  return r;
}

ServerConfig adaptive_config() {
  ServerConfig cfg;
  cfg.policy = PolicyKind::kAdaptiveTrust;
  cfg.adaptive_trust.spot_check_every = 0;  // no spot noise in assertions
  cfg.endgame_max_outstanding = 0;
  return cfg;
}

TEST(AdaptivePolicyServer, UntrustedStartAtQuorum2ThenDropToSolo) {
  ProjectServer server(make_catalog(2), adaptive_config());
  // Two unknown devices: the first workunit goes out quorum-2.
  const auto a1 = server.request_work(1, 0.0);
  const auto a2 = server.request_work(2, 0.0);
  ASSERT_TRUE(a1 && a2);
  EXPECT_EQ(a1->workunit.id, a2->workunit.id);
  // Both clean, quorum agrees: both devices now carry a verified outcome.
  EXPECT_EQ(server.report_result(a1->result_id, 10.0, clean()),
            ResultState::kPendingValidation);
  EXPECT_EQ(server.report_result(a2->result_id, 11.0, clean()),
            ResultState::kValid);
  EXPECT_TRUE(server.policy().device_trusted(1, 11.0));
  EXPECT_TRUE(server.policy().device_trusted(2, 11.0));
  // The next workunit to a trusted device is a solo issue: the second
  // device asking gets nothing (no copy to hand out).
  const auto b1 = server.request_work(1, 12.0);
  ASSERT_TRUE(b1);
  EXPECT_FALSE(server.request_work(2, 12.0));
  EXPECT_EQ(server.report_result(b1->result_id, 20.0, clean()),
            ResultState::kValid);
  EXPECT_TRUE(server.complete());
  EXPECT_EQ(server.policy().counters().quorum2_decisions, 1u);
  EXPECT_EQ(server.policy().counters().solo_issues, 1u);
}

// --- specs, presets and the shipped example files ---------------------------

TEST(PolicySpec, ParserReadsEveryKey) {
  const PolicySpec s = parse_policy_spec(
      "# comment\n"
      "policy = adaptive\n"
      "quorum2_weeks = 11\n"
      "spot_check_fraction = 0.27\n"
      "trust_gain = 0.25   # trailing comment\n"
      "trust_threshold = 0.6\n"
      "trust_half_life_days = 90\n"
      "spot_check_every = 12\n"
      "\n");
  EXPECT_EQ(s.kind, PolicyKind::kAdaptiveTrust);
  EXPECT_DOUBLE_EQ(s.validation.quorum2_until, 11.0 * 7.0 * 86400.0);
  EXPECT_DOUBLE_EQ(s.validation.spot_check_fraction, 0.27);
  EXPECT_DOUBLE_EQ(s.adaptive_trust.trust_gain, 0.25);
  EXPECT_DOUBLE_EQ(s.adaptive_trust.trust_threshold, 0.6);
  EXPECT_DOUBLE_EQ(s.adaptive_trust.half_life_days, 90.0);
  EXPECT_EQ(s.adaptive_trust.spot_check_every, 12u);
}

TEST(PolicySpec, ParserRejectsGarbage) {
  EXPECT_THROW(parse_policy_spec("policy = frobnicate\n"), ParseError);
  EXPECT_THROW(parse_policy_spec("frobnicate = 1\n"), ParseError);
  EXPECT_THROW(parse_policy_spec("trust_gain = banana\n"), ParseError);
  EXPECT_THROW(parse_policy_spec("no equals sign here\n"), ParseError);
}

TEST(PolicySpec, PresetsResolveAndUnknownThrows) {
  for (const std::string& name : policy_preset_names()) {
    EXPECT_TRUE(is_policy_preset(name));
    // Each preset text parses back to the same spec the preset returns.
    const PolicySpec from_text = parse_policy_spec(policy_preset_text(name));
    const PolicySpec direct = policy_preset(name);
    EXPECT_EQ(from_text.kind, direct.kind) << name;
    EXPECT_DOUBLE_EQ(from_text.validation.quorum2_until,
                     direct.validation.quorum2_until)
        << name;
    EXPECT_DOUBLE_EQ(from_text.adaptive_trust.trust_threshold,
                     direct.adaptive_trust.trust_threshold)
        << name;
    EXPECT_EQ(from_text.adaptive_trust.spot_check_every,
              direct.adaptive_trust.spot_check_every)
        << name;
  }
  EXPECT_FALSE(is_policy_preset("no-such-policy"));
  EXPECT_THROW(policy_preset("no-such-policy"), ConfigError);
  EXPECT_THROW(policy_preset_text("no-such-policy"), ConfigError);
}

TEST(PolicySpec, AdaptivePresetMatchesDocumentedDefaults) {
  // The preset ships the tuned defaults; AdaptiveTrustConfig{} must agree
  // so `--policy adaptive` and a default-constructed config cannot diverge.
  const PolicySpec s = policy_preset("adaptive");
  const AdaptiveTrustConfig defaults;
  EXPECT_DOUBLE_EQ(s.adaptive_trust.trust_gain, defaults.trust_gain);
  EXPECT_DOUBLE_EQ(s.adaptive_trust.trust_threshold,
                   defaults.trust_threshold);
  EXPECT_DOUBLE_EQ(s.adaptive_trust.half_life_days, defaults.half_life_days);
  EXPECT_EQ(s.adaptive_trust.spot_check_every, defaults.spot_check_every);
}

// The compiled-in presets and the shipped policy files must stay in
// lockstep, byte for byte — otherwise `--policy adaptive` and
// `--policy examples/policies/adaptive.policy` could silently diverge.
TEST(PolicySpec, PresetTextMatchesShippedExampleFiles) {
  for (const std::string& name : policy_preset_names()) {
    const std::string path = std::string(HCMD_SOURCE_DIR) +
                             "/examples/policies/" + name + ".policy";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing example policy file: " << path;
    std::ostringstream text;
    text << in.rdbuf();
    EXPECT_EQ(text.str(), policy_preset_text(name)) << path;
  }
}

}  // namespace
}  // namespace hcmd::server
