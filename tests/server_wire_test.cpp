// End-to-end over real sockets: GridServer + WireClient on localhost.
// Covers the RPC round trips, reply routing under pipelining, duplicate
// returns replayed over the wire, outage refusal with the fleet backoff law,
// framing-error connection teardown, and a concurrent-client smoke.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/types.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <thread>
#include <vector>

#include "client/loadgen.hpp"
#include "client/wire.hpp"
#include "faults/plan.hpp"
#include "faults/schedule.hpp"
#include "server/net.hpp"
#include "server/service.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace hcmd;
using namespace hcmd::server;
using hcmd::client::WireClient;
using hcmd::client::WireReply;
namespace proto = hcmd::server::proto;

ServiceConfig quorum1_config() {
  ServiceConfig config;
  config.server.validation.quorum2_until = 0.0;
  config.server.validation.spot_check_fraction = 0.0;
  return config;
}

proto::RequestWork request_work(std::uint32_t device, std::uint64_t seq) {
  proto::RequestWork m;
  m.device = device;
  m.seq = seq;
  return m;
}

proto::ReportResult report_for(const proto::Assignment& a, std::uint64_t seq) {
  proto::ReportResult m;
  m.device = a.device;
  m.seq = seq;
  m.result_id = a.result_id;
  m.reference_seconds = a.reference_seconds;
  m.reported_runtime = a.reference_seconds / 0.5;
  return m;
}

class WireTest : public ::testing::Test {
 protected:
  void start_server(std::size_t workunits, ServiceConfig config,
                    double time_scale = 1.0) {
    NetOptions net;
    net.time_scale = time_scale;
    start_server_with(workunits, std::move(config), net);
  }

  void start_server_with(std::size_t workunits, ServiceConfig config,
                         NetOptions net) {
    net.port = 0;  // ephemeral
    net.workers = 2;
    server_ = std::make_unique<GridServer>(
        synthetic_catalog(workunits, 4.0), std::move(config), net);
    server_->start();
  }

  void TearDown() override {
    if (server_) server_->stop();
  }

  std::unique_ptr<GridServer> server_;
};

TEST_F(WireTest, RequestReportStatusRoundTrip) {
  start_server(8, quorum1_config());
  WireClient c("127.0.0.1", server_->port());

  c.queue(request_work(0, 1));
  c.flush();
  const WireReply r1 = c.recv_reply();
  ASSERT_EQ(r1.verb, proto::Verb::kAssignment);
  EXPECT_EQ(r1.device, 0u);
  EXPECT_EQ(r1.seq, 1u);
  EXPECT_GT(r1.assignment.reference_seconds, 0.0);

  c.queue(report_for(r1.assignment, 2));
  c.flush();
  const WireReply r2 = c.recv_reply();
  ASSERT_EQ(r2.verb, proto::Verb::kReportAck);
  EXPECT_EQ(r2.ack.state, ResultState::kValid);
  EXPECT_FALSE(r2.ack.duplicate);

  proto::GetStatus q;
  q.device = 0;
  q.seq = 3;
  c.queue(q);
  c.flush();
  const WireReply r3 = c.recv_reply();
  ASSERT_EQ(r3.verb, proto::Verb::kStatus);
  EXPECT_EQ(r3.status.results_sent, 1u);
  EXPECT_EQ(r3.status.results_received, 1u);
  EXPECT_EQ(r3.status.workunits_completed, 1u);
  EXPECT_EQ(r3.status.workunits_total, 8u);

  server_->stop();
  const GridServer::Stats s = server_->stats();
  EXPECT_EQ(s.accepted, 1u);
  EXPECT_GE(s.frames_in, 3u);
  EXPECT_GE(s.frames_out, 3u);
  EXPECT_EQ(s.protocol_errors, 0u);
}

// Many pipelined devices on one connection: the service answers in merge
// order, not send order, so the echoed (device, seq) routing must let the
// client match every reply; all assignments must be distinct workunits.
TEST_F(WireTest, PipelinedRepliesCarryRouting) {
  constexpr std::uint32_t kDevices = 32;
  start_server(64, quorum1_config());
  WireClient c("127.0.0.1", server_->port());

  for (std::uint32_t d = 0; d < kDevices; ++d)
    c.queue(request_work(d, 100 + d));
  c.flush();

  std::set<std::uint32_t> devices_seen;
  std::set<std::uint64_t> workunits_seen;
  for (std::uint32_t i = 0; i < kDevices; ++i) {
    const WireReply r = c.recv_reply();
    ASSERT_EQ(r.verb, proto::Verb::kAssignment);
    EXPECT_EQ(r.seq, 100u + r.device);
    devices_seen.insert(r.device);
    workunits_seen.insert(r.assignment.workunit);
  }
  EXPECT_EQ(devices_seen.size(), kDevices);
  EXPECT_EQ(workunits_seen.size(), kDevices);
}

// Satellite: a return replayed over the wire (client resends after a lost
// ack) must come back duplicate=true and leave the server's tallies alone.
TEST_F(WireTest, DuplicateReportOverSocketIsIdempotent) {
  start_server(4, quorum1_config());
  WireClient c("127.0.0.1", server_->port());

  c.queue(request_work(0, 1));
  c.flush();
  const WireReply a = c.recv_reply();
  ASSERT_EQ(a.verb, proto::Verb::kAssignment);

  const proto::ReportResult rep = report_for(a.assignment, 2);
  c.queue(rep);
  c.flush();
  const WireReply ack1 = c.recv_reply();
  ASSERT_EQ(ack1.verb, proto::Verb::kReportAck);
  EXPECT_FALSE(ack1.ack.duplicate);
  EXPECT_EQ(ack1.ack.state, ResultState::kValid);

  proto::ReportResult replay = rep;
  replay.seq = 3;
  c.queue(replay);
  c.flush();
  const WireReply ack2 = c.recv_reply();
  ASSERT_EQ(ack2.verb, proto::Verb::kReportAck);
  EXPECT_TRUE(ack2.ack.duplicate);
  EXPECT_EQ(ack2.ack.state, ResultState::kValid);

  proto::GetStatus q;
  q.device = 0;
  q.seq = 4;
  c.queue(q);
  c.flush();
  const WireReply st = c.recv_reply();
  ASSERT_EQ(st.verb, proto::Verb::kStatus);
  EXPECT_EQ(st.status.results_received, 1u);
  EXPECT_EQ(st.status.results_valid, 1u);
  EXPECT_EQ(st.status.workunits_completed, 1u);
}

// Satellite: an outage window refuses issue over the wire exactly as
// in-process — explicit Busy carrying the remaining window — and the
// client-side schedule that refusal drives is the fleet backoff law:
// delay_k = backoff_delay(k, device_rng) for k = 0, 1, 2, ... until the
// server answers, then the attempt counter resets.
TEST_F(WireTest, OutageBusyMatchesFleetBackoffSchedule) {
  // Outage spans service seconds [0, 40); at 40x time scale that is one
  // wall second, so the client sees Busy for ~1 s and then gets work.
  constexpr double kOutageEnd = 40.0;
  constexpr double kTimeScale = 40.0;
  ServiceConfig config = quorum1_config();
  faults::OutageWindow w;
  w.begin_seconds = 0.0;
  w.end_seconds = kOutageEnd;
  config.faults.outages.push_back(w);
  const faults::FaultPlan plan = config.faults;
  start_server(8, config, kTimeScale);

  // The law both the fleet simulation and the loadgen apply, with a replica
  // device RNG so the expected delay sequence is exact.
  const faults::FaultSchedule law(plan, util::Rng(99).fork("faults"));
  util::Rng device_rng = util::Rng(7).fork("device").fork("wire");
  util::Rng replica_rng = util::Rng(7).fork("device").fork("wire");

  WireClient c("127.0.0.1", server_->port());
  std::vector<double> schedule;       // delays the client computed
  std::vector<double> retry_afters;   // what the server told it
  std::uint32_t attempt = 0;
  std::uint64_t seq = 1;
  WireReply last;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  while (true) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "server never came back from the outage";
    c.queue(request_work(3, seq++));
    c.flush();
    last = c.recv_reply();
    if (last.verb != proto::Verb::kBusy) break;
    retry_afters.push_back(last.busy.retry_after);
    // Fleet law: current attempt indexes the delay, then increments.
    schedule.push_back(law.backoff_delay(attempt, device_rng));
    ++attempt;
    // Don't wait the (service-time) delay in wall time — the schedule
    // itself is the artefact under test; just re-poll quickly.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_EQ(last.verb, proto::Verb::kAssignment) << "expected work after outage";
  ASSERT_GE(retry_afters.size(), 1u) << "client never saw the outage";

  // Every refusal carried the true remaining window.
  for (const double ra : retry_afters) {
    EXPECT_GT(ra, 0.0);
    EXPECT_LE(ra, kOutageEnd);
  }
  // Later refusals are closer to the window end than earlier ones.
  EXPECT_LT(retry_afters.back(), retry_afters.front() + 1e-9);

  // The client's schedule equals the simulated fleet's, draw for draw.
  ASSERT_EQ(schedule.size(), retry_afters.size());
  for (std::size_t k = 0; k < schedule.size(); ++k) {
    const double expected =
        law.backoff_delay(static_cast<std::uint32_t>(k), replica_rng);
    EXPECT_DOUBLE_EQ(schedule[k], expected) << "attempt " << k;
    EXPECT_GE(schedule[k], 0.75 * plan.backoff_initial_seconds);
  }

  // The refusals moved the same counter the in-process denial path moves.
  EXPECT_GE(server_->service().registry().total("fault.outage_denied"),
            retry_afters.size());
}

// A broken length prefix desynchronises the stream: the server must drop
// the connection, and count the event.
TEST_F(WireTest, BadLengthPrefixClosesConnection) {
  start_server(4, quorum1_config());
  WireClient c("127.0.0.1", server_->port());

  const std::uint8_t zeros[4] = {0, 0, 0, 0};  // length 0 is never legal
  ASSERT_EQ(::send(c.fd(), zeros, sizeof(zeros), MSG_NOSIGNAL), 4);
  EXPECT_THROW(c.recv_reply(), ConfigError);  // server closed the stream

  // A fresh connection still works: the error was scoped to one peer.
  WireClient c2("127.0.0.1", server_->port());
  c2.queue(request_work(0, 1));
  c2.flush();
  EXPECT_EQ(c2.recv_reply().verb, proto::Verb::kAssignment);

  server_->stop();
  EXPECT_GE(server_->stats().protocol_errors, 1u);
  EXPECT_GE(server_->stats().closed, 1u);
}

// A response verb sent by a client is a payload-level error: the stream
// survives with a kError reply rather than a teardown.
TEST_F(WireTest, ResponseVerbGetsErrorReplyAndStreamSurvives) {
  start_server(4, quorum1_config());
  WireClient c("127.0.0.1", server_->port());

  std::vector<std::uint8_t> frame;
  proto::Busy bogus;
  bogus.device = 1;
  bogus.seq = 1;
  proto::encode(bogus, frame);
  ASSERT_EQ(::send(c.fd(), frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  const WireReply err = c.recv_reply();
  ASSERT_EQ(err.verb, proto::Verb::kError);

  c.queue(request_work(1, 2));
  c.flush();
  EXPECT_EQ(c.recv_reply().verb, proto::Verb::kAssignment);
}

// Several clients hammering the server concurrently: every workunit issued
// exactly once, every report lands, totals add up.
TEST_F(WireTest, ConcurrentClientsCompleteDisjointWork) {
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint32_t kPerThread = 50;
  start_server(kThreads * kPerThread, quorum1_config());

  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t] {
      WireClient c("127.0.0.1", server_->port());
      std::uint64_t seq = 1;
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        c.queue(request_work(t, seq++));
        c.flush();
        const WireReply a = c.recv_reply();
        ASSERT_EQ(a.verb, proto::Verb::kAssignment);
        c.queue(report_for(a.assignment, seq++));
        c.flush();
        ASSERT_EQ(c.recv_reply().verb, proto::Verb::kReportAck);
      }
    });
  }
  for (auto& th : threads) th.join();

  WireClient c("127.0.0.1", server_->port());
  proto::GetStatus q;
  q.device = 0;
  q.seq = 1;
  c.queue(q);
  c.flush();
  const WireReply st = c.recv_reply();
  ASSERT_EQ(st.verb, proto::Verb::kStatus);
  EXPECT_EQ(st.status.results_sent, kThreads * kPerThread);
  EXPECT_EQ(st.status.results_received, kThreads * kPerThread);
  EXPECT_EQ(st.status.workunits_completed, kThreads * kPerThread);
  EXPECT_TRUE(st.status.complete);
}

// The load generator end-to-end: a small farm over real sockets completes
// the whole catalogue and reports sane latency numbers.
TEST_F(WireTest, LoadgenDrainsCatalog) {
  start_server(512, quorum1_config());

  client::LoadgenOptions opts;
  opts.host = "127.0.0.1";
  opts.port = server_->port();
  opts.devices = 32;
  opts.connections = 2;
  opts.duration_seconds = 20.0;  // upper bound; exits early when drained
  const client::LoadgenReport report = client::run_loadgen(opts);

  // The endgame can over-issue: once the unsent pool drains, idle devices
  // get redundant copies of in-flight workunits, so assignments >= catalog.
  EXPECT_GE(report.assignments, 512u);
  EXPECT_GE(report.acks, 512u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_GT(report.requests_per_sec, 0.0);
  // Issue latency covers every scheduler response: assignments, end-game
  // NoWork polls and (here absent) Busy refusals.
  EXPECT_EQ(report.issue_latency.total(),
            report.assignments + report.no_work + report.busy);
  EXPECT_EQ(report.report_latency.total(), report.acks);
  EXPECT_TRUE(report.server_status.complete);
  EXPECT_EQ(report.server_status.workunits_completed, 512u);

  const std::string json = client::loadgen_json(opts, report);
  EXPECT_NE(json.find("\"requests_per_sec\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"loadgen\""), std::string::npos);
  // Spans default on: every scheduler/ack reply carried an echo, and the
  // JSON surfaces the server_spans stage breakdown.
  EXPECT_EQ(report.span_replies, report.replies);
  EXPECT_EQ(report.span_total.total(), report.replies);
  EXPECT_NE(json.find("\"server_spans\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait\""), std::string::npos);
  EXPECT_GT(report.server_status.uptime_seconds, 0.0);
  EXPECT_GE(report.server_status.rpc_assignments, 512u);
}

TEST_F(WireTest, SpanEchoOverTheWire) {
  start_server(8, quorum1_config());
  WireClient c("127.0.0.1", server_->port());

  // Flagless request: the 1.0 frame comes back, no tail.
  c.queue(request_work(0, 1));
  c.flush();
  const WireReply plain = c.recv_reply();
  ASSERT_EQ(plain.verb, proto::Verb::kAssignment);
  EXPECT_FALSE(plain.span().has_value());

  // Flagged request: a monotone server-side timeline in service seconds.
  proto::RequestWork m = request_work(1, 2);
  m.flags = proto::kFlagWantSpan;
  c.queue(m);
  c.flush();
  const WireReply r = c.recv_reply();
  ASSERT_EQ(r.verb, proto::Verb::kAssignment);
  const std::optional<proto::SpanBlock> span = r.span();
  ASSERT_TRUE(span.has_value());
  EXPECT_GE(span->t_enqueue, span->t_read);
  EXPECT_GE(span->t_dequeue, span->t_enqueue);
  EXPECT_GE(span->t_decision, span->t_dequeue);
  EXPECT_GE(span->t_read, 0.0);
}

TEST_F(WireTest, GetMetricsOverTheWire) {
  start_server(8, quorum1_config());
  WireClient c("127.0.0.1", server_->port());
  c.queue(request_work(0, 1));
  c.flush();
  ASSERT_EQ(c.recv_reply().verb, proto::Verb::kAssignment);

  proto::GetMetrics q;
  q.device = 0;
  q.seq = 2;
  q.format = proto::MetricsFormat::kPrometheus;
  c.queue(q);
  c.flush();
  const WireReply r = c.recv_reply();
  ASSERT_EQ(r.verb, proto::Verb::kMetrics);
  EXPECT_EQ(r.metrics.format, proto::MetricsFormat::kPrometheus);
  EXPECT_NE(r.metrics.text.find("hcmd_rpc_requests_total"),
            std::string::npos);
  EXPECT_NE(r.metrics.text.find("hcmd_net_frames_in_total"),
            std::string::npos);
  EXPECT_LE(r.metrics.text.size() + 64, proto::kMaxFrameBytes);

  q.seq = 3;
  q.format = proto::MetricsFormat::kJson;
  c.queue(q);
  c.flush();
  const WireReply j = c.recv_reply();
  ASSERT_EQ(j.verb, proto::Verb::kMetrics);
  EXPECT_NE(j.metrics.text.find("\"hcmd-metrics-snapshot\""),
            std::string::npos);
}

TEST_F(WireTest, DumpDiagnosticsOverTheWire) {
  NetOptions net;
  net.flight_prefix = "/tmp/hcmd-wiretest-flight";
  start_server_with(8, quorum1_config(), net);
  WireClient c("127.0.0.1", server_->port());
  c.queue(request_work(0, 1));
  c.flush();
  ASSERT_EQ(c.recv_reply().verb, proto::Verb::kAssignment);

  proto::DumpDiagnostics q;
  q.device = 0;
  q.seq = 2;
  c.queue(q);
  c.flush();
  const WireReply r = c.recv_reply();
  ASSERT_EQ(r.verb, proto::Verb::kDiagnosticsAck);
  EXPECT_EQ(r.diagnostics.device, 0u);
  EXPECT_EQ(r.diagnostics.seq, 2u);
  ASSERT_FALSE(r.diagnostics.path.empty());
  EXPECT_EQ(r.diagnostics.path.rfind("/tmp/hcmd-wiretest-flight-", 0), 0u);
  EXPECT_GT(r.diagnostics.events, 0u);

  // The dump is a readable JSONL file with at least one rpc event.
  std::ifstream in(r.diagnostics.path);
  ASSERT_TRUE(in.good());
  std::string line;
  bool saw_rpc = false;
  std::uint64_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    if (line.find("\"cat\":\"rpc\"") != std::string::npos) saw_rpc = true;
  }
  EXPECT_EQ(lines, r.diagnostics.events);
  EXPECT_TRUE(saw_rpc);
  in.close();
  std::remove(r.diagnostics.path.c_str());
}

TEST_F(WireTest, HttpMetricsListenerServesSnapshots) {
  NetOptions net;
  net.metrics_port = 0;      // ephemeral
  net.snapshot_period = 0.05;
  start_server_with(8, quorum1_config(), net);
  ASSERT_NE(server_->metrics_port(), 0u);

  WireClient c("127.0.0.1", server_->port());
  c.queue(request_work(0, 1));
  c.flush();
  ASSERT_EQ(c.recv_reply().verb, proto::Verb::kAssignment);

  // One-shot HTTP/1.0 GET against the metrics listener.
  const auto http_get = [&](const std::string& target) {
    WireClient raw("127.0.0.1", server_->metrics_port());
    const std::string req = "GET " + target + " HTTP/1.0\r\n\r\n";
    ::send(raw.fd(), req.data(), req.size(), MSG_NOSIGNAL);
    std::string response;
    char buf[4096];
    while (true) {
      const ssize_t n = ::recv(raw.fd(), buf, sizeof buf, 0);
      if (n <= 0) break;
      response.append(buf, static_cast<std::size_t>(n));
    }
    return response;
  };

  // The first snapshot fires one period after start; poll until it lands.
  std::string response;
  for (int i = 0; i < 100; ++i) {
    response = http_get("/metrics");
    if (response.find("hcmd_rpc_requests_total") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("hcmd_rpc_requests_total"), std::string::npos);

  const std::string json = http_get("/metrics.json");
  EXPECT_NE(json.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(json.find("hcmd-metrics-snapshot"), std::string::npos);

  const std::string missing = http_get("/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);
}

}  // namespace
