#include "core/phase2.hpp"

#include <gtest/gtest.h>

#include "util/duration.hpp"
#include "util/error.hpp"

namespace hcmd::core {
namespace {

TEST(Phase2, ConfigRejectsBadScenario) {
  Phase2Scenario s;
  s.proteins_simulated = 4;
  EXPECT_THROW(make_phase2_config(s), hcmd::ConfigError);
  s = {};
  s.grid_share = 0.0;
  EXPECT_THROW(make_phase2_config(s), hcmd::ConfigError);
  s = {};
  s.work_ratio = -1.0;
  EXPECT_THROW(make_phase2_config(s), hcmd::ConfigError);
}

TEST(Phase2, WorkloadCalibratedToTarget) {
  Phase2Scenario s;
  s.proteins_simulated = 100;
  const CampaignConfig config = make_phase2_config(s);
  const Workload w = build_workload(config);
  const double total = w.mct->total_reference_seconds(w.benchmark);
  EXPECT_NEAR(total, s.work_ratio * s.phase1_reference_seconds,
              0.01 * total);
}

TEST(Phase2, UsesBoincAccountingAndConstantShare) {
  const CampaignConfig config = make_phase2_config(Phase2Scenario{});
  EXPECT_EQ(config.devices.accounting,
            volunteer::AccountingMode::kBoincCpuTime);
  EXPECT_DOUBLE_EQ(config.share.control_share, config.share.full_share);
  EXPECT_DOUBLE_EQ(config.share.full_share, 0.25);
  EXPECT_DOUBLE_EQ(config.share.ramp_weeks, 0.0);
}

TEST(Phase2, FrozenHardwareMatchesPhase1Speeds) {
  Phase2Scenario frozen;
  frozen.freeze_hardware_at_phase1 = true;
  const CampaignConfig config = make_phase2_config(frozen);
  EXPECT_DOUBLE_EQ(config.devices.speed_improvement_per_year, 0.0);
  // Median boosted to the phase-I-era effective level.
  const volunteer::DeviceParams defaults;
  EXPECT_NEAR(config.devices.speed_median,
              defaults.speed_median *
                  std::pow(1.0 + defaults.speed_improvement_per_year, 2.1),
              1e-9);
}

TEST(Phase2, PopulationPinnedToScenarioGrid) {
  Phase2Scenario s;
  s.grid_vftp = 123'456.0;
  const CampaignConfig config = make_phase2_config(s);
  const volunteer::WcgPopulationModel model(config.population);
  const double day0 = config.population.reference_days;
  EXPECT_NEAR(model.base_vftp(day0), 123'456.0, 1.0);
  // Effectively constant over the campaign horizon.
  EXPECT_NEAR(model.base_vftp(day0 + 400.0), 123'456.0, 100.0);
}

TEST(Phase2, OrganicGridIsPlausible2008Level) {
  const double vftp = organic_grid_vftp_2008();
  // Above the Dec-2007 ~75k, far below the recruited 239k.
  EXPECT_GT(vftp, 80'000.0);
  EXPECT_LT(vftp, 140'000.0);
}

TEST(Phase2, BiggerGridFinishesFaster) {
  Phase2Scenario small, big;
  small.proteins_simulated = big.proteins_simulated = 60;
  small.scale = big.scale = 1.0 / 1000.0;
  small.grid_vftp = 100'000.0;
  big.grid_vftp = 240'000.0;
  small.max_weeks = big.max_weeks = 160.0;
  const CampaignReport rs = run_campaign(make_phase2_config(small));
  const CampaignReport rb = run_campaign(make_phase2_config(big));
  ASSERT_TRUE(rs.completed);
  ASSERT_TRUE(rb.completed);
  EXPECT_LT(rb.completion_weeks, rs.completion_weeks);
}

}  // namespace
}  // namespace hcmd::core
