#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hcmd::obs {
namespace {

Tracer::Options tiny(std::size_t capacity) {
  Tracer::Options o;
  o.capacity = capacity;
  o.sample_every = {1, 1, 1, 1};
  return o;
}

TEST(Tracer, RecordsAndSnapshotsInOrder) {
  Tracer t(tiny(8));
  t.record(TraceCat::kWorkunit, TraceEv::kWuIssue, 1.0, 10, 20, 3);
  t.record(TraceCat::kWorkunit, TraceEv::kWuReturn, 2.0, 10, 20, 1);
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].t, 1.0);
  EXPECT_EQ(events[0].id, 10u);
  EXPECT_EQ(events[0].arg, 20u);
  EXPECT_EQ(events[0].extra, 3u);
  EXPECT_EQ(events[1].ev, static_cast<std::uint8_t>(TraceEv::kWuReturn));
  EXPECT_EQ(t.recorded(), 2u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, RingKeepsNewestWhenFull) {
  Tracer t(tiny(4));
  for (std::uint32_t i = 0; i < 10; ++i)
    t.record(TraceCat::kWorkunit, TraceEv::kWuIssue, i, i);
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first snapshot of the survivors: ids 6, 7, 8, 9.
  EXPECT_EQ(events.front().id, 6u);
  EXPECT_EQ(events.back().id, 9u);
}

TEST(Tracer, CapacityRoundsToPowerOfTwo) {
  Tracer t(tiny(5));
  EXPECT_EQ(t.capacity(), 8u);
}

TEST(Tracer, SamplingKeepsEveryNth) {
  Tracer::Options o;
  o.capacity = 64;
  o.sample_every = {1, 1, 4, 0};  // churn 1-in-4, server disabled
  Tracer t(o);
  for (std::uint32_t i = 0; i < 12; ++i)
    t.record(TraceCat::kChurn, TraceEv::kDevOnline, i, i);
  for (std::uint32_t i = 0; i < 7; ++i)
    t.record(TraceCat::kServer, TraceEv::kSrvTransitionerPass, i, i);
  EXPECT_EQ(t.seen(TraceCat::kChurn), 12u);
  EXPECT_EQ(t.seen(TraceCat::kServer), 7u);
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 3u);  // churn 0, 4, 8; server suppressed
  EXPECT_EQ(events[0].id, 0u);
  EXPECT_EQ(events[1].id, 4u);
  EXPECT_EQ(events[2].id, 8u);
}

TEST(Tracer, SamplingIsDeterministic) {
  const auto run = [] {
    Tracer::Options o;
    o.capacity = 32;
    o.sample_every = {1, 2, 3, 4};
    Tracer t(o);
    for (std::uint32_t i = 0; i < 50; ++i) {
      t.record(static_cast<TraceCat>(i % kTraceCatCount),
               TraceEv::kWuIssue, i, i);
    }
    return t.jsonl();
  };
  EXPECT_EQ(run(), run());
}

TEST(Tracer, ChromeTraceShape) {
  Tracer t(tiny(8));
  t.record(TraceCat::kDevice, TraceEv::kDevJoin, 1.5, 7);
  const std::string json = t.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"dev_join\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"device\""), std::string::npos);
  // 1.5 sim-seconds -> 1.5e6 trace microseconds.
  EXPECT_NE(json.find("\"ts\":1500000"), std::string::npos);
  // Document is an object that closes.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(Tracer, JsonlOneLinePerEvent) {
  Tracer t(tiny(8));
  t.record(TraceCat::kWorkunit, TraceEv::kWuIssue, 0.5, 1);
  t.record(TraceCat::kWorkunit, TraceEv::kWuReturn, 1.0, 1);
  const std::string jsonl = t.jsonl();
  std::size_t lines = 0;
  for (char c : jsonl)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(jsonl.find("\"ev\":\"wu_issue\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"ev\":\"wu_return\""), std::string::npos);
}

TEST(Tracer, NamesCoverAllEnumerators) {
  for (std::size_t i = 0; i < kTraceCatCount; ++i)
    EXPECT_NE(std::string(trace_cat_name(static_cast<TraceCat>(i))), "?");
  for (int e = 0; e <= static_cast<int>(TraceEv::kFltStraggler); ++e)
    EXPECT_NE(std::string(trace_ev_name(static_cast<TraceEv>(e))), "?");
}

}  // namespace
}  // namespace hcmd::obs
