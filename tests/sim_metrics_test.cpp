#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace hcmd::sim {
namespace {

TEST(MetricSet, CountersAccumulate) {
  MetricSet m(10.0);
  m.count("results");
  m.count("results", 4);
  EXPECT_EQ(m.counter("results"), 5u);
  EXPECT_EQ(m.counter("missing"), 0u);
}

TEST(MetricSet, CountTakesStringViewWithoutCopy) {
  MetricSet m(10.0);
  // A string_view over a larger buffer: no temporary std::string is built
  // at the call boundary (the signature is string_view end to end).
  const char* buffer = "results_extra_suffix";
  const std::string_view name(buffer, 7);  // "results"
  m.count(name, 2);
  EXPECT_EQ(m.counter("results"), 2u);
  EXPECT_EQ(m.counter(name), 2u);
}

TEST(MetricSet, PreResolvedIdCountsMatchByName) {
  MetricSet m(10.0);
  const obs::MetricId id = m.counter_id("rpc");
  EXPECT_TRUE(id.valid());
  m.count(id);
  m.count(id, 9);
  m.count("rpc", 10);  // by-name path hits the same slot
  EXPECT_EQ(m.counter(id), 20u);
  EXPECT_EQ(m.counter("rpc"), 20u);
  // Resolving again yields the same id.
  EXPECT_EQ(m.counter_id("rpc").value, id.value);
}

TEST(MetricSet, RegistrySharedWithInstrumentation) {
  MetricSet m(10.0);
  const obs::MetricId h = m.registry().intern_histogram("latency");
  m.registry().observe(h, 3.0);
  const obs::LogHistogram* hist = m.registry().histogram(h);
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->total(), 1u);
  // Histograms live in a separate namespace from counters.
  EXPECT_EQ(m.counter("latency"), 0u);
}

TEST(MetricSet, MetersBinByTime) {
  MetricSet m(10.0);
  m.meter("cpu", 1.0, 2.0);
  m.meter("cpu", 9.0, 3.0);
  m.meter("cpu", 25.0, 7.0);
  const auto& s = m.series("cpu");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.value(0), 5.0);
  EXPECT_DOUBLE_EQ(s.value(1), 0.0);
  EXPECT_DOUBLE_EQ(s.value(2), 7.0);
}

TEST(MetricSet, MissingSeriesIsEmpty) {
  MetricSet m(10.0);
  EXPECT_EQ(m.series("none").size(), 0u);
  EXPECT_FALSE(m.has_series("none"));
}

TEST(MetricSet, NamesEnumerated) {
  MetricSet m(1.0);
  m.count("a");
  m.count("b");
  m.meter("x", 0.0, 1.0);
  EXPECT_EQ(m.counter_names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(m.series_names(), (std::vector<std::string>{"x"}));
}

TEST(GaugeSampler, SamplesOnCadence) {
  Simulation sim;
  double level = 0.0;
  sim.schedule_at(2.5, [&] { level = 10.0; });
  GaugeSampler gauge(sim, 0.0, 1.0, [&] { return level; });
  sim.run_until(5.0);
  // Samples at t = 0..5 inclusive (event at exactly 5.0 executes).
  ASSERT_GE(gauge.values().size(), 5u);
  EXPECT_DOUBLE_EQ(gauge.values()[0], 0.0);
  EXPECT_DOUBLE_EQ(gauge.values()[2], 0.0);   // t=2, before the step
  EXPECT_DOUBLE_EQ(gauge.values()[3], 10.0);  // t=3
  EXPECT_DOUBLE_EQ(gauge.times()[3], 3.0);
}

TEST(GaugeSampler, StopHaltsSampling) {
  Simulation sim;
  GaugeSampler gauge(sim, 0.0, 1.0, [] { return 1.0; });
  sim.run_until(3.0);
  const std::size_t n = gauge.values().size();
  gauge.stop();
  sim.run_until(10.0);
  EXPECT_EQ(gauge.values().size(), n);
}

TEST(GaugeSampler, StopIsIdempotentAndSafeAfterRun) {
  Simulation sim;
  GaugeSampler gauge(sim, 0.0, 1.0, [] { return 1.0; }, /*horizon=*/3.0);
  sim.run_until(20.0);  // runs well past the horizon
  const std::size_t n = gauge.values().size();
  // The periodic event retired itself at the horizon; these stops cancel a
  // slot that was recycled long ago and must be generation-checked no-ops.
  gauge.stop();
  gauge.stop();
  sim.run_until(40.0);
  EXPECT_EQ(gauge.values().size(), n);
  EXPECT_LE(gauge.times().back(), 3.0);
}

TEST(GaugeSampler, HorizonRetiresThePeriodicEvent) {
  Simulation sim;
  GaugeSampler gauge(sim, 0.0, 1.0, [] { return 1.0; }, /*horizon=*/5.0);
  sim.run_until(100.0);
  // Samples at t = 0..5; the tick at t = 6 retired the event instead of
  // riding the heap to t = 100.
  EXPECT_EQ(gauge.values().size(), 6u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(GaugeSampler, DestructionCancelsThePendingTick) {
  Simulation sim;
  {
    GaugeSampler gauge(sim, 0.0, 1.0, [] { return 1.0; });
    sim.run_until(2.0);
    // `gauge` dies here with its next tick still armed; the destructor must
    // disarm it or the event would fire into a dead object.
  }
  sim.run_until(10.0);  // would crash/UB if the timer survived
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace hcmd::sim
