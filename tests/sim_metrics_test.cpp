#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace hcmd::sim {
namespace {

TEST(MetricSet, CountersAccumulate) {
  MetricSet m(10.0);
  m.count("results");
  m.count("results", 4);
  EXPECT_EQ(m.counter("results"), 5u);
  EXPECT_EQ(m.counter("missing"), 0u);
}

TEST(MetricSet, MetersBinByTime) {
  MetricSet m(10.0);
  m.meter("cpu", 1.0, 2.0);
  m.meter("cpu", 9.0, 3.0);
  m.meter("cpu", 25.0, 7.0);
  const auto& s = m.series("cpu");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.value(0), 5.0);
  EXPECT_DOUBLE_EQ(s.value(1), 0.0);
  EXPECT_DOUBLE_EQ(s.value(2), 7.0);
}

TEST(MetricSet, MissingSeriesIsEmpty) {
  MetricSet m(10.0);
  EXPECT_EQ(m.series("none").size(), 0u);
  EXPECT_FALSE(m.has_series("none"));
}

TEST(MetricSet, NamesEnumerated) {
  MetricSet m(1.0);
  m.count("a");
  m.count("b");
  m.meter("x", 0.0, 1.0);
  EXPECT_EQ(m.counter_names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(m.series_names(), (std::vector<std::string>{"x"}));
}

TEST(GaugeSampler, SamplesOnCadence) {
  Simulation sim;
  double level = 0.0;
  sim.schedule_at(2.5, [&] { level = 10.0; });
  GaugeSampler gauge(sim, 0.0, 1.0, [&] { return level; });
  sim.run_until(5.0);
  // Samples at t = 0..5 inclusive (event at exactly 5.0 executes).
  ASSERT_GE(gauge.values().size(), 5u);
  EXPECT_DOUBLE_EQ(gauge.values()[0], 0.0);
  EXPECT_DOUBLE_EQ(gauge.values()[2], 0.0);   // t=2, before the step
  EXPECT_DOUBLE_EQ(gauge.values()[3], 10.0);  // t=3
  EXPECT_DOUBLE_EQ(gauge.times()[3], 3.0);
}

TEST(GaugeSampler, StopHaltsSampling) {
  Simulation sim;
  GaugeSampler gauge(sim, 0.0, 1.0, [] { return 1.0; });
  sim.run_until(3.0);
  const std::size_t n = gauge.values().size();
  gauge.stop();
  sim.run_until(10.0);
  EXPECT_EQ(gauge.values().size(), n);
}

}  // namespace
}  // namespace hcmd::sim
