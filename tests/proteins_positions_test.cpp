#include "proteins/starting_positions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "proteins/generator.hpp"

namespace hcmd::proteins {
namespace {

TEST(OrientationGrid, PaperCounts) {
  EXPECT_EQ(kNumRotationCouples, 21u);
  EXPECT_EQ(kNumGammaSteps, 10u);
  EXPECT_EQ(kNumOrientations, 210u);  // footnote 1: 21 couples x 10 gammas
}

TEST(OrientationGrid, CouplesAreDistinct) {
  OrientationGrid grid;
  std::set<std::pair<double, double>> seen;
  for (std::uint32_t i = 0; i < kNumRotationCouples; ++i)
    seen.insert(grid.couple(i));
  EXPECT_EQ(seen.size(), kNumRotationCouples);
}

TEST(OrientationGrid, BetaWithinPolarRange) {
  OrientationGrid grid;
  for (std::uint32_t i = 0; i < kNumRotationCouples; ++i) {
    const auto [alpha, beta] = grid.couple(i);
    EXPECT_GE(beta, 0.0);
    EXPECT_LE(beta, kPi);
    EXPECT_GE(alpha, 0.0);
    EXPECT_LT(alpha, 2.0 * kPi + 1e-12);
  }
}

TEST(OrientationGrid, GammasEvenlySpaced) {
  OrientationGrid grid;
  for (std::uint32_t g = 0; g < kNumGammaSteps; ++g)
    EXPECT_NEAR(grid.gamma(g), 2.0 * kPi * g / kNumGammaSteps, 1e-12);
}

TEST(OrientationGrid, OrientationCombinesCoupleAndGamma) {
  OrientationGrid grid;
  const Dof6 d = grid.orientation(5, 3);
  const auto [alpha, beta] = grid.couple(5);
  EXPECT_DOUBLE_EQ(d.alpha, alpha);
  EXPECT_DOUBLE_EQ(d.beta, beta);
  EXPECT_DOUBLE_EQ(d.gamma, grid.gamma(3));
}

TEST(StartingPositions, CountMatchesNsepFor) {
  const ReducedProtein p = generate_protein(1, 200, 1.0, 5);
  const StartingPositionParams params;
  EXPECT_EQ(starting_positions(p, params).size(), nsep_for(p, params));
}

TEST(StartingPositions, AllAtProbeRadius) {
  const ReducedProtein p = generate_protein(2, 150, 1.0, 6);
  const StartingPositionParams params;
  const double r = p.bounding_radius() + params.probe_radius;
  for (const Vec3& pos : starting_positions(p, params))
    EXPECT_NEAR(pos.norm(), r, 1e-9);
}

TEST(StartingPositions, BiggerProteinMorePositions) {
  const ReducedProtein small = generate_protein(3, 60, 1.0, 7);
  const ReducedProtein big = generate_protein(4, 1200, 1.0, 8);
  EXPECT_GT(nsep_for(big), nsep_for(small));
}

TEST(StartingPositions, ElongationIncreasesNsep) {
  // Same atom count, stretched shape -> larger surface -> more positions
  // ("directly linked with the size and shape of the protein").
  const ReducedProtein round = generate_protein(5, 300, 1.0, 9);
  const ReducedProtein stretched = generate_protein(6, 300, 2.0, 9);
  EXPECT_GT(nsep_for(stretched), nsep_for(round));
}

TEST(StartingPositions, FinerSpacingMorePositions) {
  const ReducedProtein p = generate_protein(7, 300, 1.0, 10);
  StartingPositionParams coarse, fine;
  coarse.spacing = 6.0;
  fine.spacing = 3.0;
  // Nsep ~ 1/spacing^2.
  const double ratio = static_cast<double>(nsep_for(p, fine)) /
                       static_cast<double>(nsep_for(p, coarse));
  EXPECT_NEAR(ratio, 4.0, 0.05);
}

TEST(StartingPositions, DeterministicForSameInput) {
  const ReducedProtein p = generate_protein(8, 120, 1.1, 11);
  const auto a = starting_positions(p);
  const auto b = starting_positions(p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].y, b[i].y);
    EXPECT_EQ(a[i].z, b[i].z);
  }
}

TEST(StartingPositions, QuasiUniformCoverage) {
  // Fibonacci lattice: neighbouring points should be roughly `spacing`
  // apart; check min pairwise distance is not degenerate.
  const ReducedProtein p = generate_protein(9, 400, 1.0, 12);
  const StartingPositionParams params;
  const auto pos = starting_positions(p, params);
  ASSERT_GE(pos.size(), 10u);
  double min_d = 1e9;
  for (std::size_t i = 0; i + 1 < pos.size(); i += 17) {
    for (std::size_t j = i + 1; j < pos.size(); j += 13) {
      min_d = std::min(min_d, (pos[i] - pos[j]).norm());
    }
  }
  EXPECT_GT(min_d, 0.2 * params.spacing);
}

}  // namespace
}  // namespace hcmd::proteins
