#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace hcmd::util {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats all, a, b;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(Summarize, EmptyGivesZeros) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.median, 0.0);
}

TEST(Summarize, OddAndEvenMedians) {
  std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(summarize(odd).median, 2.0);
  std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(summarize(even).median, 2.5);
}

TEST(Quantile, Extremes) {
  std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Quantile, Interpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> yneg{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, yneg), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesGivesZero) {
  std::vector<double> xs{1, 2, 3};
  std::vector<double> ys{5, 5, 5};
  EXPECT_EQ(pearson(xs, ys), 0.0);
}

TEST(FitLinear, RecoversExactLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.5 * i - 2.0);
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 3.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -2.0, 1e-10);
  EXPECT_NEAR(fit.r, 1.0, 1e-12);
}

TEST(FitLinear, DegenerateInput) {
  std::vector<double> one{1.0};
  const LinearFit fit = fit_linear(one, one);
  EXPECT_EQ(fit.slope, 0.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);    // bucket 0
  h.add(9.99);   // bucket 4
  h.add(-5.0);   // clamped to 0
  h.add(20.0);   // clamped to 4
  h.add(5.0);    // bucket 2
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
}

TEST(Histogram, WeightedAdds) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 7);
  EXPECT_EQ(h.count(0), 7u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::logic_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::logic_error);
}

TEST(TimeBinnedSeries, AccumulatesIntoCorrectBins) {
  TimeBinnedSeries s(0.0, 10.0);
  s.add(0.0, 1.0);
  s.add(9.999, 2.0);
  s.add(10.0, 4.0);
  s.add(35.0, 8.0);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s.value(0), 3.0);
  EXPECT_DOUBLE_EQ(s.value(1), 4.0);
  EXPECT_DOUBLE_EQ(s.value(2), 0.0);
  EXPECT_DOUBLE_EQ(s.value(3), 8.0);
  EXPECT_DOUBLE_EQ(s.bin_mid(1), 15.0);
}

TEST(TimeBinnedSeries, RejectsBeforeOrigin) {
  TimeBinnedSeries s(100.0, 10.0);
  EXPECT_THROW(s.add(99.0, 1.0), std::logic_error);
}

TEST(TimeBinnedSeries, MeanOverRange) {
  TimeBinnedSeries s(0.0, 1.0);
  s.add(0.5, 2.0);
  s.add(1.5, 4.0);
  s.add(2.5, 6.0);
  EXPECT_DOUBLE_EQ(s.mean_over(0, 3), 4.0);
  EXPECT_DOUBLE_EQ(s.mean_over(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(s.mean_over(1, 1), 0.0);
}

// Property: summarize's stddev matches the definition for random data.
class SummarizeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SummarizeProperty, MatchesDirectComputation) {
  Rng rng(GetParam());
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.lognormal(1.0, 0.7));
  const Summary s = summarize(xs);
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_NEAR(s.mean, mean, 1e-9 * std::abs(mean));
  EXPECT_NEAR(s.stddev, std::sqrt(var), 1e-9 * std::sqrt(var));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummarizeProperty,
                         ::testing::Values(1ull, 2ull, 3ull, 10ull, 77ull));

}  // namespace
}  // namespace hcmd::util
