// Quickstart: dock one protein couple with the MAXDo-equivalent kernel.
//
// Generates two synthetic reduced-model proteins, runs the energy-map
// computation over a small grid of starting positions and orientations,
// and prints the strongest interactions it found — the per-couple map the
// HCMD project computed 28,224 times.
//
// Usage: quickstart [receptor_atoms] [ligand_atoms]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "docking/energy_map.hpp"
#include "docking/maxdo.hpp"
#include "proteins/generator.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hcmd;

  const std::uint32_t receptor_atoms =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 120;
  const std::uint32_t ligand_atoms =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 80;

  const proteins::ReducedProtein receptor =
      proteins::generate_protein(1, receptor_atoms, 1.15, /*seed=*/2007);
  const proteins::ReducedProtein ligand =
      proteins::generate_protein(2, ligand_atoms, 1.0, /*seed=*/2008);

  std::printf("Receptor %s: %zu pseudo-atoms, bounding radius %.1f A\n",
              receptor.name().c_str(), receptor.size(),
              receptor.bounding_radius());
  std::printf("Ligand   %s: %zu pseudo-atoms, bounding radius %.1f A\n\n",
              ligand.name().c_str(), ligand.size(),
              ligand.bounding_radius());

  docking::MaxDoParams params;
  params.positions.spacing = 10.0;     // coarse grid for the demo
  params.minimizer.max_iterations = 25;
  params.gamma_steps = 3;

  docking::MaxDoProgram program(receptor, ligand, params);
  std::printf("Starting positions (Nsep): %u; rotation couples: %u\n",
              program.nsep(), proteins::kNumRotationCouples);

  docking::MaxDoTask task;
  task.isep_begin = 0;
  task.isep_end = std::min<std::uint32_t>(program.nsep(), 6);
  docking::MaxDoCheckpoint checkpoint;
  const auto status = program.run(task, checkpoint);
  std::printf("Computed %zu (position, rotation) minimisations [%s], "
              "%llu energy evaluations\n\n",
              checkpoint.records.size(),
              status == docking::RunStatus::kCompleted ? "completed"
                                                       : "interrupted",
              static_cast<unsigned long long>(program.work().evaluations));

  // Rank the map by total interaction energy (most negative = strongest).
  std::vector<docking::DockingRecord> best = checkpoint.records;
  std::sort(best.begin(), best.end(),
            [](const docking::DockingRecord& a,
               const docking::DockingRecord& b) {
              return a.etot() < b.etot();
            });

  util::Table table("Strongest predicted interactions (kcal/mol)");
  table.header({"isep", "irot", "E_lj", "E_elec", "E_tot", "x", "y", "z"});
  for (std::size_t i = 0; i < std::min<std::size_t>(best.size(), 10); ++i) {
    const auto& r = best[i];
    table.row({util::Table::cell(static_cast<int>(r.isep)),
               util::Table::cell(static_cast<int>(r.irot)),
               util::Table::cell(r.elj, 3), util::Table::cell(r.eelec, 3),
               util::Table::cell(r.etot(), 3), util::Table::cell(r.pose.x, 1),
               util::Table::cell(r.pose.y, 1),
               util::Table::cell(r.pose.z, 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nThe more negative E_tot, the stronger the predicted "
              "protein-protein interaction.\n");

  // The scientific reduction: the energy map and its candidate binding
  // sites (clusters of strongly attractive starting positions).
  const docking::EnergyMap map(program.nsep(), checkpoint.records);
  const auto coords =
      proteins::starting_positions(receptor, params.positions);
  docking::BindingSiteParams site_params;
  site_params.energy_fraction = 0.25;
  site_params.cluster_radius = 12.0;
  site_params.min_cluster_size = 1;
  const auto sites = docking::find_binding_sites(map, coords, site_params);
  std::printf("\nCandidate binding sites (within the computed slice):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(sites.size(), 3); ++i) {
    const auto& s = sites[i];
    std::printf("  site %zu: %zu positions, best E_tot %.3f kcal/mol at "
                "position %u, centroid (%.1f, %.1f, %.1f)\n",
                i + 1, s.positions.size(), s.best_energy, s.best_position,
                s.centroid.x, s.centroid.y, s.centroid.z);
  }
  return 0;
}
