// Phase II capacity planner (the Section 7 analysis as a CLI tool).
//
// Given a future protein count, a docking-point reduction factor and a
// target completion horizon, answers the paper's planning questions: how
// much work, how long at the Phase I rate, how many virtual full-time
// processors, and how many volunteers that implies.
//
// Usage: phase2_planner [proteins] [reduction] [target_weeks] [grid_share]
#include <cstdio>
#include <cstdlib>

#include "analysis/projection.hpp"
#include "util/duration.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hcmd;

  analysis::ProjectionInput input;
  if (argc > 1)
    input.phase2_proteins = static_cast<std::uint32_t>(std::atoi(argv[1]));
  if (argc > 2) input.docking_point_reduction = std::atof(argv[2]);
  if (argc > 3) input.phase2_target_weeks = std::atof(argv[3]);
  if (argc > 4) input.hcmd_grid_share = std::atof(argv[4]);

  const analysis::ProjectionResult r = analysis::project_phase2(input);

  std::printf("HCMD Phase II planner\n");
  std::printf("  proteins              : %u (phase I: %u)\n",
              input.phase2_proteins, input.phase1_proteins);
  std::printf("  docking-point cut     : %.0fx\n",
              input.docking_point_reduction);
  std::printf("  target horizon        : %.0f weeks\n",
              input.phase2_target_weeks);
  std::printf("  HCMD share of the grid: %.0f%%\n\n",
              100.0 * input.hcmd_grid_share);

  util::Table table("Projection");
  table.header({"quantity", "value"});
  table.row({"work vs phase I", util::Table::cell(r.work_ratio, 2) + "x"});
  table.row({"CPU time needed",
             util::format_ydhms(r.phase2_cpu_seconds) + " (y:d:h:m:s)"});
  table.row({"duration at phase-I rate",
             util::Table::cell(r.weeks_at_phase1_rate, 1) + " weeks"});
  table.row({"VFTP for the target horizon",
             util::with_commas(std::uint64_t(r.vftp_needed))});
  table.row({"participating members needed",
             util::with_commas(std::uint64_t(r.members_needed_project))});
  table.row({"total WCG members needed",
             util::with_commas(std::uint64_t(r.members_needed_grid))});
  table.row({"new volunteers to recruit",
             util::with_commas(std::uint64_t(r.new_volunteers_needed))});
  std::printf("%s", table.render().c_str());

  std::printf("\n(The paper's defaults reproduce Table 3: 5.66x the work, "
              "90 weeks at the phase-I rate,\n 59,730 VFTP for 40 weeks, "
              "and ~1.3 million members at a 25%% grid share.)\n");
  return 0;
}
