// Volunteer grid vs dedicated grid on the same workload (the paper's
// Section 6 comparison, as a runnable experiment).
//
// Runs the Phase I workload twice:
//  * through the volunteer-grid DES (UD accounting, throttle, churn,
//    redundancy), measuring the VFTP it consumed;
//  * through the dedicated batch model, computing how many always-on
//    reference processors deliver the same work in the same wall time.
//
// Usage: grid_comparison [scale_denominator]
#include <cstdio>
#include <cstdlib>

#include "core/campaign.hpp"
#include "dedicated/grid.hpp"
#include "util/duration.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hcmd;

  core::CampaignConfig config;
  const int denom = argc > 1 ? std::atoi(argv[1]) : 50;
  config.scale = 1.0 / static_cast<double>(denom);

  std::printf("Running the Phase I campaign on the volunteer grid "
              "(1/%d scale)...\n\n", denom);
  const core::CampaignReport r = core::run_campaign(config);

  const double period = r.completion_weeks * util::kSecondsPerWeek;
  const double dedicated_procs = dedicated::dedicated_equivalent_processors(
      r.total_reference_seconds, period);

  util::Table table("One workload, two grids");
  table.header({"quantity", "volunteer grid", "dedicated grid"});
  table.row({"processors (whole period)",
             util::Table::cell(std::uint64_t(r.avg_hcmd_vftp_whole)) +
                 " VFTP",
             util::Table::cell(std::uint64_t(dedicated_procs)) +
                 " reference CPUs"});
  table.row({"wall time",
             util::format_compact(period),
             util::format_compact(period) + " (by construction)"});
  table.row({"CPU time billed",
             util::format_ydhms(r.speeddown.reported_runtime_seconds /
                                r.scale),
             util::format_ydhms(r.total_reference_seconds)});
  table.row({"results computed",
             util::with_commas(
                 std::uint64_t(r.results_received_rescaled())) ,
             util::with_commas(std::uint64_t(r.results_useful_rescaled())) +
                 " (no redundancy needed)"});
  std::printf("%s\n", table.render().c_str());

  std::printf("Equivalence: %.0f volunteer VFTP did the work of %.0f "
              "dedicated processors -> one VFTP ~ 1/%.2f of an Opteron "
              "2 GHz.\n",
              r.avg_hcmd_vftp_whole, dedicated_procs,
              r.avg_hcmd_vftp_whole / dedicated_procs);
  std::printf("(Paper: 16,450 VFTP <-> 3,029 dedicated processors, factor "
              "5.43; net of redundancy, a VFTP is ~4x slower.)\n\n");

  std::printf("Where the factor comes from:\n");
  std::printf("  redundancy factor          : %.2f\n", r.redundancy_factor);
  std::printf("  net speed-down             : %.2f\n",
              r.speeddown.net_speeddown());
  std::printf("  = gross factor             : %.2f\n",
              r.speeddown.gross_speeddown());
  std::printf("\nBut the volunteer grid's weakness 'is balanced by the huge "
              "number of virtual full-time processors of this kind of "
              "grid': the dedicated slice below would need %.0fx Grid'5000 "
              "calibration slices running for the whole campaign.\n",
              dedicated_procs / 640.0);
  return 0;
}
