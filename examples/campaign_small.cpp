// A miniature Phase I, end to end: generate a protein set, calibrate the
// cost model, package workunits, run the volunteer-grid discrete-event
// simulation, and print the campaign report. This is the whole pipeline the
// reproduction benches use, at a size that runs in well under a second.
//
// Usage: campaign_small [proteins] [scale_denominator] [target_hours]
#include <cstdio>
#include <cstdlib>

#include "core/campaign.hpp"
#include "util/ascii_plot.hpp"
#include "util/duration.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hcmd;

  core::CampaignConfig config;
  config.benchmark.count =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 40;
  // Keep the miniature set's totals proportional to the full problem.
  config.benchmark.target_total_nsep =
      294'533ull * config.benchmark.count / 168u;
  const int denom = argc > 2 ? std::atoi(argv[2]) : 200;
  config.scale = 1.0 / static_cast<double>(denom);
  config.packaging.target_hours =
      argc > 3 ? std::atof(argv[3]) : 4.0;

  std::printf("Mini Phase I: %u proteins, 1/%d scale, %.0f h workunits\n\n",
              config.benchmark.count, denom, config.packaging.target_hours);

  const core::CampaignReport r = core::run_campaign(config);

  std::printf("Workload:\n");
  std::printf("  total reference CPU : %s\n",
              util::format_ydhms(r.total_reference_seconds).c_str());
  std::printf("  workunits (full)    : %s (mean %s)\n",
              util::with_commas(r.full_workunit_count).c_str(),
              util::format_compact(r.nominal_wu_mean_seconds).c_str());
  std::printf("  devices simulated   : %zu\n\n", r.devices_simulated);

  std::printf("Outcome:\n");
  std::printf("  completed           : %s in %.1f weeks\n",
              r.completed ? "yes" : "no", r.completion_weeks);
  std::printf("  results received    : %s (%.1f%% useful)\n",
              util::with_commas(r.counters.results_received).c_str(),
              100.0 * r.useful_fraction);
  std::printf("  redundancy factor   : %.2f\n", r.redundancy_factor);
  if (r.counters.useful_reference_seconds > 0.0) {
    std::printf("  gross speed-down    : %.2f\n",
                r.speeddown.gross_speeddown());
    std::printf("  net speed-down      : %.2f\n",
                r.speeddown.net_speeddown());
  }
  std::printf("  mean WU run time    : %s (packaged for %s)\n\n",
              util::format_compact(r.runtime_summary.mean).c_str(),
              util::format_compact(r.nominal_wu_mean_seconds).c_str());

  std::printf("Weekly HCMD virtual full-time processors (rescaled):\n%s\n",
              util::line_chart(r.hcmd_vftp_weekly, 70, 10).c_str());

  util::Table snaps("Progression snapshots");
  snaps.header({"date", "proteins docked", "computation done"});
  for (const auto& s : r.snapshots) {
    snaps.row({s.label,
               util::Table::cell(100.0 * s.proteins_done_fraction, 1) + "%",
               util::Table::cell(100.0 * s.computation_done_fraction, 1) +
                   "%"});
  }
  std::printf("%s", snaps.render().c_str());
  return 0;
}
