file(REMOVE_RECURSE
  "CMakeFiles/campaign_small.dir/campaign_small.cpp.o"
  "CMakeFiles/campaign_small.dir/campaign_small.cpp.o.d"
  "campaign_small"
  "campaign_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
