# Empty compiler generated dependencies file for campaign_small.
# This may be replaced when dependencies are built.
