# Empty compiler generated dependencies file for grid_comparison.
# This may be replaced when dependencies are built.
