file(REMOVE_RECURSE
  "CMakeFiles/grid_comparison.dir/grid_comparison.cpp.o"
  "CMakeFiles/grid_comparison.dir/grid_comparison.cpp.o.d"
  "grid_comparison"
  "grid_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
