# Empty dependencies file for phase2_planner.
# This may be replaced when dependencies are built.
