file(REMOVE_RECURSE
  "CMakeFiles/phase2_planner.dir/phase2_planner.cpp.o"
  "CMakeFiles/phase2_planner.dir/phase2_planner.cpp.o.d"
  "phase2_planner"
  "phase2_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase2_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
