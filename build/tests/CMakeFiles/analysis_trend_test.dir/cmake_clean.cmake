file(REMOVE_RECURSE
  "CMakeFiles/analysis_trend_test.dir/analysis_trend_test.cpp.o"
  "CMakeFiles/analysis_trend_test.dir/analysis_trend_test.cpp.o.d"
  "analysis_trend_test"
  "analysis_trend_test.pdb"
  "analysis_trend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_trend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
