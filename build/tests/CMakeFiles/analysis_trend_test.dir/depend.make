# Empty dependencies file for analysis_trend_test.
# This may be replaced when dependencies are built.
