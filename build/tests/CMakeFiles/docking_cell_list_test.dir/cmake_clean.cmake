file(REMOVE_RECURSE
  "CMakeFiles/docking_cell_list_test.dir/docking_cell_list_test.cpp.o"
  "CMakeFiles/docking_cell_list_test.dir/docking_cell_list_test.cpp.o.d"
  "docking_cell_list_test"
  "docking_cell_list_test.pdb"
  "docking_cell_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docking_cell_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
