# Empty compiler generated dependencies file for docking_cell_list_test.
# This may be replaced when dependencies are built.
