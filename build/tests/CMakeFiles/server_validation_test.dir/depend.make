# Empty dependencies file for server_validation_test.
# This may be replaced when dependencies are built.
