file(REMOVE_RECURSE
  "CMakeFiles/server_validation_test.dir/server_validation_test.cpp.o"
  "CMakeFiles/server_validation_test.dir/server_validation_test.cpp.o.d"
  "server_validation_test"
  "server_validation_test.pdb"
  "server_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
