file(REMOVE_RECURSE
  "CMakeFiles/client_agent_test.dir/client_agent_test.cpp.o"
  "CMakeFiles/client_agent_test.dir/client_agent_test.cpp.o.d"
  "client_agent_test"
  "client_agent_test.pdb"
  "client_agent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_agent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
