# Empty compiler generated dependencies file for client_agent_test.
# This may be replaced when dependencies are built.
