file(REMOVE_RECURSE
  "CMakeFiles/core_replication_test.dir/core_replication_test.cpp.o"
  "CMakeFiles/core_replication_test.dir/core_replication_test.cpp.o.d"
  "core_replication_test"
  "core_replication_test.pdb"
  "core_replication_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_replication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
