# Empty compiler generated dependencies file for core_replication_test.
# This may be replaced when dependencies are built.
