file(REMOVE_RECURSE
  "CMakeFiles/integration_invariants_test.dir/integration_invariants_test.cpp.o"
  "CMakeFiles/integration_invariants_test.dir/integration_invariants_test.cpp.o.d"
  "integration_invariants_test"
  "integration_invariants_test.pdb"
  "integration_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
