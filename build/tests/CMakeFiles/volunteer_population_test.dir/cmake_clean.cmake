file(REMOVE_RECURSE
  "CMakeFiles/volunteer_population_test.dir/volunteer_population_test.cpp.o"
  "CMakeFiles/volunteer_population_test.dir/volunteer_population_test.cpp.o.d"
  "volunteer_population_test"
  "volunteer_population_test.pdb"
  "volunteer_population_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volunteer_population_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
