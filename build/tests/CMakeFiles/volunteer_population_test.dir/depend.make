# Empty dependencies file for volunteer_population_test.
# This may be replaced when dependencies are built.
