file(REMOVE_RECURSE
  "CMakeFiles/server_credit_test.dir/server_credit_test.cpp.o"
  "CMakeFiles/server_credit_test.dir/server_credit_test.cpp.o.d"
  "server_credit_test"
  "server_credit_test.pdb"
  "server_credit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_credit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
