file(REMOVE_RECURSE
  "CMakeFiles/docking_maxdo_test.dir/docking_maxdo_test.cpp.o"
  "CMakeFiles/docking_maxdo_test.dir/docking_maxdo_test.cpp.o.d"
  "docking_maxdo_test"
  "docking_maxdo_test.pdb"
  "docking_maxdo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docking_maxdo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
