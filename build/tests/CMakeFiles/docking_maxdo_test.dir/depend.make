# Empty dependencies file for docking_maxdo_test.
# This may be replaced when dependencies are built.
