file(REMOVE_RECURSE
  "CMakeFiles/timing_linearity_test.dir/timing_linearity_test.cpp.o"
  "CMakeFiles/timing_linearity_test.dir/timing_linearity_test.cpp.o.d"
  "timing_linearity_test"
  "timing_linearity_test.pdb"
  "timing_linearity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_linearity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
