# Empty compiler generated dependencies file for timing_linearity_test.
# This may be replaced when dependencies are built.
