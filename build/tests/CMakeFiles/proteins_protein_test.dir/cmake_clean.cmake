file(REMOVE_RECURSE
  "CMakeFiles/proteins_protein_test.dir/proteins_protein_test.cpp.o"
  "CMakeFiles/proteins_protein_test.dir/proteins_protein_test.cpp.o.d"
  "proteins_protein_test"
  "proteins_protein_test.pdb"
  "proteins_protein_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteins_protein_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
