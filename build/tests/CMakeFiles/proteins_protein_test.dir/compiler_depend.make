# Empty compiler generated dependencies file for proteins_protein_test.
# This may be replaced when dependencies are built.
