# Empty compiler generated dependencies file for core_phase2_test.
# This may be replaced when dependencies are built.
