file(REMOVE_RECURSE
  "CMakeFiles/util_calendar_test.dir/util_calendar_test.cpp.o"
  "CMakeFiles/util_calendar_test.dir/util_calendar_test.cpp.o.d"
  "util_calendar_test"
  "util_calendar_test.pdb"
  "util_calendar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_calendar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
