# Empty dependencies file for results_archive_test.
# This may be replaced when dependencies are built.
