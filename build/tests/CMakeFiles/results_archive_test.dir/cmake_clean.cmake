file(REMOVE_RECURSE
  "CMakeFiles/results_archive_test.dir/results_archive_test.cpp.o"
  "CMakeFiles/results_archive_test.dir/results_archive_test.cpp.o.d"
  "results_archive_test"
  "results_archive_test.pdb"
  "results_archive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/results_archive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
