
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/results_archive_test.cpp" "tests/CMakeFiles/results_archive_test.dir/results_archive_test.cpp.o" "gcc" "tests/CMakeFiles/results_archive_test.dir/results_archive_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hcmd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/hcmd_client.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/hcmd_server.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/hcmd_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/dedicated/CMakeFiles/hcmd_dedicated.dir/DependInfo.cmake"
  "/root/repo/build/src/results/CMakeFiles/hcmd_results.dir/DependInfo.cmake"
  "/root/repo/build/src/packaging/CMakeFiles/hcmd_packaging.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/hcmd_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/docking/CMakeFiles/hcmd_docking.dir/DependInfo.cmake"
  "/root/repo/build/src/proteins/CMakeFiles/hcmd_proteins.dir/DependInfo.cmake"
  "/root/repo/build/src/volunteer/CMakeFiles/hcmd_volunteer.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hcmd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hcmd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
