file(REMOVE_RECURSE
  "CMakeFiles/integration_science_test.dir/integration_science_test.cpp.o"
  "CMakeFiles/integration_science_test.dir/integration_science_test.cpp.o.d"
  "integration_science_test"
  "integration_science_test.pdb"
  "integration_science_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_science_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
