# Empty dependencies file for integration_science_test.
# This may be replaced when dependencies are built.
