file(REMOVE_RECURSE
  "CMakeFiles/timing_mct_test.dir/timing_mct_test.cpp.o"
  "CMakeFiles/timing_mct_test.dir/timing_mct_test.cpp.o.d"
  "timing_mct_test"
  "timing_mct_test.pdb"
  "timing_mct_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_mct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
