# Empty compiler generated dependencies file for timing_mct_test.
# This may be replaced when dependencies are built.
