file(REMOVE_RECURSE
  "CMakeFiles/server_schedule_test.dir/server_schedule_test.cpp.o"
  "CMakeFiles/server_schedule_test.dir/server_schedule_test.cpp.o.d"
  "server_schedule_test"
  "server_schedule_test.pdb"
  "server_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
