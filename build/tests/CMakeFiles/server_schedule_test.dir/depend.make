# Empty dependencies file for server_schedule_test.
# This may be replaced when dependencies are built.
