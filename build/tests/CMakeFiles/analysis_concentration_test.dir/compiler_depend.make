# Empty compiler generated dependencies file for analysis_concentration_test.
# This may be replaced when dependencies are built.
