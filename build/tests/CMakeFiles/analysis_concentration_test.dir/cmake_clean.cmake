file(REMOVE_RECURSE
  "CMakeFiles/analysis_concentration_test.dir/analysis_concentration_test.cpp.o"
  "CMakeFiles/analysis_concentration_test.dir/analysis_concentration_test.cpp.o.d"
  "analysis_concentration_test"
  "analysis_concentration_test.pdb"
  "analysis_concentration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_concentration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
