# Empty dependencies file for docking_energy_test.
# This may be replaced when dependencies are built.
