file(REMOVE_RECURSE
  "CMakeFiles/docking_energy_test.dir/docking_energy_test.cpp.o"
  "CMakeFiles/docking_energy_test.dir/docking_energy_test.cpp.o.d"
  "docking_energy_test"
  "docking_energy_test.pdb"
  "docking_energy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docking_energy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
