file(REMOVE_RECURSE
  "CMakeFiles/proteins_generator_test.dir/proteins_generator_test.cpp.o"
  "CMakeFiles/proteins_generator_test.dir/proteins_generator_test.cpp.o.d"
  "proteins_generator_test"
  "proteins_generator_test.pdb"
  "proteins_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteins_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
