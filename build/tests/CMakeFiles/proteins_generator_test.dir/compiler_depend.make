# Empty compiler generated dependencies file for proteins_generator_test.
# This may be replaced when dependencies are built.
