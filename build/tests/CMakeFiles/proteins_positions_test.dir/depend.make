# Empty dependencies file for proteins_positions_test.
# This may be replaced when dependencies are built.
