file(REMOVE_RECURSE
  "CMakeFiles/proteins_positions_test.dir/proteins_positions_test.cpp.o"
  "CMakeFiles/proteins_positions_test.dir/proteins_positions_test.cpp.o.d"
  "proteins_positions_test"
  "proteins_positions_test.pdb"
  "proteins_positions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteins_positions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
