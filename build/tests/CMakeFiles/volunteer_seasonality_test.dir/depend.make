# Empty dependencies file for volunteer_seasonality_test.
# This may be replaced when dependencies are built.
