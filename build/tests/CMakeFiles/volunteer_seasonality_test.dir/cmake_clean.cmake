file(REMOVE_RECURSE
  "CMakeFiles/volunteer_seasonality_test.dir/volunteer_seasonality_test.cpp.o"
  "CMakeFiles/volunteer_seasonality_test.dir/volunteer_seasonality_test.cpp.o.d"
  "volunteer_seasonality_test"
  "volunteer_seasonality_test.pdb"
  "volunteer_seasonality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volunteer_seasonality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
