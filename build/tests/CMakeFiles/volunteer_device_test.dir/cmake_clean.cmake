file(REMOVE_RECURSE
  "CMakeFiles/volunteer_device_test.dir/volunteer_device_test.cpp.o"
  "CMakeFiles/volunteer_device_test.dir/volunteer_device_test.cpp.o.d"
  "volunteer_device_test"
  "volunteer_device_test.pdb"
  "volunteer_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volunteer_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
