# Empty dependencies file for volunteer_device_test.
# This may be replaced when dependencies are built.
