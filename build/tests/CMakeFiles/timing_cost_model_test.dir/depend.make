# Empty dependencies file for timing_cost_model_test.
# This may be replaced when dependencies are built.
