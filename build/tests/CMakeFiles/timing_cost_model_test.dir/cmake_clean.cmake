file(REMOVE_RECURSE
  "CMakeFiles/timing_cost_model_test.dir/timing_cost_model_test.cpp.o"
  "CMakeFiles/timing_cost_model_test.dir/timing_cost_model_test.cpp.o.d"
  "timing_cost_model_test"
  "timing_cost_model_test.pdb"
  "timing_cost_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_cost_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
