file(REMOVE_RECURSE
  "CMakeFiles/util_duration_test.dir/util_duration_test.cpp.o"
  "CMakeFiles/util_duration_test.dir/util_duration_test.cpp.o.d"
  "util_duration_test"
  "util_duration_test.pdb"
  "util_duration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_duration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
