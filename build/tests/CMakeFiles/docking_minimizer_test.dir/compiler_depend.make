# Empty compiler generated dependencies file for docking_minimizer_test.
# This may be replaced when dependencies are built.
