file(REMOVE_RECURSE
  "CMakeFiles/docking_minimizer_test.dir/docking_minimizer_test.cpp.o"
  "CMakeFiles/docking_minimizer_test.dir/docking_minimizer_test.cpp.o.d"
  "docking_minimizer_test"
  "docking_minimizer_test.pdb"
  "docking_minimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docking_minimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
