# Empty compiler generated dependencies file for packaging_test.
# This may be replaced when dependencies are built.
