file(REMOVE_RECURSE
  "CMakeFiles/packaging_test.dir/packaging_test.cpp.o"
  "CMakeFiles/packaging_test.dir/packaging_test.cpp.o.d"
  "packaging_test"
  "packaging_test.pdb"
  "packaging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packaging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
