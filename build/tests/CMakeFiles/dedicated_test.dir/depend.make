# Empty dependencies file for dedicated_test.
# This may be replaced when dependencies are built.
