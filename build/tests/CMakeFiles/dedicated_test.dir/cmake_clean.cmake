file(REMOVE_RECURSE
  "CMakeFiles/dedicated_test.dir/dedicated_test.cpp.o"
  "CMakeFiles/dedicated_test.dir/dedicated_test.cpp.o.d"
  "dedicated_test"
  "dedicated_test.pdb"
  "dedicated_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedicated_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
