file(REMOVE_RECURSE
  "CMakeFiles/volunteer_diurnal_test.dir/volunteer_diurnal_test.cpp.o"
  "CMakeFiles/volunteer_diurnal_test.dir/volunteer_diurnal_test.cpp.o.d"
  "volunteer_diurnal_test"
  "volunteer_diurnal_test.pdb"
  "volunteer_diurnal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volunteer_diurnal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
