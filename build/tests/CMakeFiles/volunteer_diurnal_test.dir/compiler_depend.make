# Empty compiler generated dependencies file for volunteer_diurnal_test.
# This may be replaced when dependencies are built.
