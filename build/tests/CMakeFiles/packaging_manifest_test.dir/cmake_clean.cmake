file(REMOVE_RECURSE
  "CMakeFiles/packaging_manifest_test.dir/packaging_manifest_test.cpp.o"
  "CMakeFiles/packaging_manifest_test.dir/packaging_manifest_test.cpp.o.d"
  "packaging_manifest_test"
  "packaging_manifest_test.pdb"
  "packaging_manifest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packaging_manifest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
