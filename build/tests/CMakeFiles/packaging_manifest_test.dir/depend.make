# Empty dependencies file for packaging_manifest_test.
# This may be replaced when dependencies are built.
