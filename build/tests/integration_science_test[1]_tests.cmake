add_test([=[ScienceE2E.WholeCrossDockingThroughTheArchive]=]  /root/repo/build/tests/integration_science_test [==[--gtest_filter=ScienceE2E.WholeCrossDockingThroughTheArchive]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[ScienceE2E.WholeCrossDockingThroughTheArchive]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  integration_science_test_TESTS ScienceE2E.WholeCrossDockingThroughTheArchive)
