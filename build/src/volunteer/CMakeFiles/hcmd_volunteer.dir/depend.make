# Empty dependencies file for hcmd_volunteer.
# This may be replaced when dependencies are built.
