file(REMOVE_RECURSE
  "CMakeFiles/hcmd_volunteer.dir/device.cpp.o"
  "CMakeFiles/hcmd_volunteer.dir/device.cpp.o.d"
  "CMakeFiles/hcmd_volunteer.dir/diurnal.cpp.o"
  "CMakeFiles/hcmd_volunteer.dir/diurnal.cpp.o.d"
  "CMakeFiles/hcmd_volunteer.dir/population.cpp.o"
  "CMakeFiles/hcmd_volunteer.dir/population.cpp.o.d"
  "CMakeFiles/hcmd_volunteer.dir/seasonality.cpp.o"
  "CMakeFiles/hcmd_volunteer.dir/seasonality.cpp.o.d"
  "libhcmd_volunteer.a"
  "libhcmd_volunteer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcmd_volunteer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
