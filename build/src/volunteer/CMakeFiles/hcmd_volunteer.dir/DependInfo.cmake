
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/volunteer/device.cpp" "src/volunteer/CMakeFiles/hcmd_volunteer.dir/device.cpp.o" "gcc" "src/volunteer/CMakeFiles/hcmd_volunteer.dir/device.cpp.o.d"
  "/root/repo/src/volunteer/diurnal.cpp" "src/volunteer/CMakeFiles/hcmd_volunteer.dir/diurnal.cpp.o" "gcc" "src/volunteer/CMakeFiles/hcmd_volunteer.dir/diurnal.cpp.o.d"
  "/root/repo/src/volunteer/population.cpp" "src/volunteer/CMakeFiles/hcmd_volunteer.dir/population.cpp.o" "gcc" "src/volunteer/CMakeFiles/hcmd_volunteer.dir/population.cpp.o.d"
  "/root/repo/src/volunteer/seasonality.cpp" "src/volunteer/CMakeFiles/hcmd_volunteer.dir/seasonality.cpp.o" "gcc" "src/volunteer/CMakeFiles/hcmd_volunteer.dir/seasonality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hcmd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
