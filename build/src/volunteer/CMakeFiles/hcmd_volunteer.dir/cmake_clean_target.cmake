file(REMOVE_RECURSE
  "libhcmd_volunteer.a"
)
