file(REMOVE_RECURSE
  "CMakeFiles/hcmd_dedicated.dir/calibration.cpp.o"
  "CMakeFiles/hcmd_dedicated.dir/calibration.cpp.o.d"
  "CMakeFiles/hcmd_dedicated.dir/grid.cpp.o"
  "CMakeFiles/hcmd_dedicated.dir/grid.cpp.o.d"
  "libhcmd_dedicated.a"
  "libhcmd_dedicated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcmd_dedicated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
