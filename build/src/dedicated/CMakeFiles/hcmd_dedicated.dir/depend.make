# Empty dependencies file for hcmd_dedicated.
# This may be replaced when dependencies are built.
