file(REMOVE_RECURSE
  "libhcmd_dedicated.a"
)
