# Empty compiler generated dependencies file for hcmd_timing.
# This may be replaced when dependencies are built.
