file(REMOVE_RECURSE
  "CMakeFiles/hcmd_timing.dir/cost_model.cpp.o"
  "CMakeFiles/hcmd_timing.dir/cost_model.cpp.o.d"
  "CMakeFiles/hcmd_timing.dir/linearity.cpp.o"
  "CMakeFiles/hcmd_timing.dir/linearity.cpp.o.d"
  "CMakeFiles/hcmd_timing.dir/mct_matrix.cpp.o"
  "CMakeFiles/hcmd_timing.dir/mct_matrix.cpp.o.d"
  "libhcmd_timing.a"
  "libhcmd_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcmd_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
