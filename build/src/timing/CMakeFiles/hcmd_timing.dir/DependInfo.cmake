
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/cost_model.cpp" "src/timing/CMakeFiles/hcmd_timing.dir/cost_model.cpp.o" "gcc" "src/timing/CMakeFiles/hcmd_timing.dir/cost_model.cpp.o.d"
  "/root/repo/src/timing/linearity.cpp" "src/timing/CMakeFiles/hcmd_timing.dir/linearity.cpp.o" "gcc" "src/timing/CMakeFiles/hcmd_timing.dir/linearity.cpp.o.d"
  "/root/repo/src/timing/mct_matrix.cpp" "src/timing/CMakeFiles/hcmd_timing.dir/mct_matrix.cpp.o" "gcc" "src/timing/CMakeFiles/hcmd_timing.dir/mct_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proteins/CMakeFiles/hcmd_proteins.dir/DependInfo.cmake"
  "/root/repo/build/src/docking/CMakeFiles/hcmd_docking.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hcmd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
