file(REMOVE_RECURSE
  "libhcmd_timing.a"
)
