# Empty dependencies file for hcmd_analysis.
# This may be replaced when dependencies are built.
