file(REMOVE_RECURSE
  "CMakeFiles/hcmd_analysis.dir/concentration.cpp.o"
  "CMakeFiles/hcmd_analysis.dir/concentration.cpp.o.d"
  "CMakeFiles/hcmd_analysis.dir/progression.cpp.o"
  "CMakeFiles/hcmd_analysis.dir/progression.cpp.o.d"
  "CMakeFiles/hcmd_analysis.dir/projection.cpp.o"
  "CMakeFiles/hcmd_analysis.dir/projection.cpp.o.d"
  "CMakeFiles/hcmd_analysis.dir/speeddown.cpp.o"
  "CMakeFiles/hcmd_analysis.dir/speeddown.cpp.o.d"
  "CMakeFiles/hcmd_analysis.dir/trend.cpp.o"
  "CMakeFiles/hcmd_analysis.dir/trend.cpp.o.d"
  "CMakeFiles/hcmd_analysis.dir/vftp.cpp.o"
  "CMakeFiles/hcmd_analysis.dir/vftp.cpp.o.d"
  "libhcmd_analysis.a"
  "libhcmd_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcmd_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
