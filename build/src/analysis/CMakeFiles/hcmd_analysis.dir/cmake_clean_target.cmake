file(REMOVE_RECURSE
  "libhcmd_analysis.a"
)
