# Empty dependencies file for hcmd_sim.
# This may be replaced when dependencies are built.
