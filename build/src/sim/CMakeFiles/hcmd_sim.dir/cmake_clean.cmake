file(REMOVE_RECURSE
  "CMakeFiles/hcmd_sim.dir/metrics.cpp.o"
  "CMakeFiles/hcmd_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/hcmd_sim.dir/simulation.cpp.o"
  "CMakeFiles/hcmd_sim.dir/simulation.cpp.o.d"
  "libhcmd_sim.a"
  "libhcmd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcmd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
