file(REMOVE_RECURSE
  "libhcmd_sim.a"
)
