# Empty compiler generated dependencies file for hcmd_proteins.
# This may be replaced when dependencies are built.
