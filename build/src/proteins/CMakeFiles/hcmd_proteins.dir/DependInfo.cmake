
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proteins/generator.cpp" "src/proteins/CMakeFiles/hcmd_proteins.dir/generator.cpp.o" "gcc" "src/proteins/CMakeFiles/hcmd_proteins.dir/generator.cpp.o.d"
  "/root/repo/src/proteins/protein.cpp" "src/proteins/CMakeFiles/hcmd_proteins.dir/protein.cpp.o" "gcc" "src/proteins/CMakeFiles/hcmd_proteins.dir/protein.cpp.o.d"
  "/root/repo/src/proteins/starting_positions.cpp" "src/proteins/CMakeFiles/hcmd_proteins.dir/starting_positions.cpp.o" "gcc" "src/proteins/CMakeFiles/hcmd_proteins.dir/starting_positions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hcmd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
