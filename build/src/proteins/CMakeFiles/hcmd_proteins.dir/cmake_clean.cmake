file(REMOVE_RECURSE
  "CMakeFiles/hcmd_proteins.dir/generator.cpp.o"
  "CMakeFiles/hcmd_proteins.dir/generator.cpp.o.d"
  "CMakeFiles/hcmd_proteins.dir/protein.cpp.o"
  "CMakeFiles/hcmd_proteins.dir/protein.cpp.o.d"
  "CMakeFiles/hcmd_proteins.dir/starting_positions.cpp.o"
  "CMakeFiles/hcmd_proteins.dir/starting_positions.cpp.o.d"
  "libhcmd_proteins.a"
  "libhcmd_proteins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcmd_proteins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
