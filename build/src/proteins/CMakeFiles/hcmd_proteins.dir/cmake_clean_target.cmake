file(REMOVE_RECURSE
  "libhcmd_proteins.a"
)
