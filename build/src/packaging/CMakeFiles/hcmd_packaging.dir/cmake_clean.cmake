file(REMOVE_RECURSE
  "CMakeFiles/hcmd_packaging.dir/manifest.cpp.o"
  "CMakeFiles/hcmd_packaging.dir/manifest.cpp.o.d"
  "CMakeFiles/hcmd_packaging.dir/packager.cpp.o"
  "CMakeFiles/hcmd_packaging.dir/packager.cpp.o.d"
  "CMakeFiles/hcmd_packaging.dir/workunit.cpp.o"
  "CMakeFiles/hcmd_packaging.dir/workunit.cpp.o.d"
  "libhcmd_packaging.a"
  "libhcmd_packaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcmd_packaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
