# Empty compiler generated dependencies file for hcmd_packaging.
# This may be replaced when dependencies are built.
