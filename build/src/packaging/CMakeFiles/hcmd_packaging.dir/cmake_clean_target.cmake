file(REMOVE_RECURSE
  "libhcmd_packaging.a"
)
