
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/packaging/manifest.cpp" "src/packaging/CMakeFiles/hcmd_packaging.dir/manifest.cpp.o" "gcc" "src/packaging/CMakeFiles/hcmd_packaging.dir/manifest.cpp.o.d"
  "/root/repo/src/packaging/packager.cpp" "src/packaging/CMakeFiles/hcmd_packaging.dir/packager.cpp.o" "gcc" "src/packaging/CMakeFiles/hcmd_packaging.dir/packager.cpp.o.d"
  "/root/repo/src/packaging/workunit.cpp" "src/packaging/CMakeFiles/hcmd_packaging.dir/workunit.cpp.o" "gcc" "src/packaging/CMakeFiles/hcmd_packaging.dir/workunit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timing/CMakeFiles/hcmd_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/proteins/CMakeFiles/hcmd_proteins.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hcmd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/docking/CMakeFiles/hcmd_docking.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
