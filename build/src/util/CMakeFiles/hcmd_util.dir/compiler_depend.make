# Empty compiler generated dependencies file for hcmd_util.
# This may be replaced when dependencies are built.
