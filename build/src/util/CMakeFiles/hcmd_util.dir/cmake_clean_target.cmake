file(REMOVE_RECURSE
  "libhcmd_util.a"
)
