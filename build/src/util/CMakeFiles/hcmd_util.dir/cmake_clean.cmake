file(REMOVE_RECURSE
  "CMakeFiles/hcmd_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/hcmd_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/hcmd_util.dir/calendar.cpp.o"
  "CMakeFiles/hcmd_util.dir/calendar.cpp.o.d"
  "CMakeFiles/hcmd_util.dir/duration.cpp.o"
  "CMakeFiles/hcmd_util.dir/duration.cpp.o.d"
  "CMakeFiles/hcmd_util.dir/rng.cpp.o"
  "CMakeFiles/hcmd_util.dir/rng.cpp.o.d"
  "CMakeFiles/hcmd_util.dir/stats.cpp.o"
  "CMakeFiles/hcmd_util.dir/stats.cpp.o.d"
  "CMakeFiles/hcmd_util.dir/table.cpp.o"
  "CMakeFiles/hcmd_util.dir/table.cpp.o.d"
  "CMakeFiles/hcmd_util.dir/thread_pool.cpp.o"
  "CMakeFiles/hcmd_util.dir/thread_pool.cpp.o.d"
  "libhcmd_util.a"
  "libhcmd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcmd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
