file(REMOVE_RECURSE
  "CMakeFiles/hcmd_core.dir/campaign.cpp.o"
  "CMakeFiles/hcmd_core.dir/campaign.cpp.o.d"
  "CMakeFiles/hcmd_core.dir/phase2.cpp.o"
  "CMakeFiles/hcmd_core.dir/phase2.cpp.o.d"
  "CMakeFiles/hcmd_core.dir/replication.cpp.o"
  "CMakeFiles/hcmd_core.dir/replication.cpp.o.d"
  "libhcmd_core.a"
  "libhcmd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcmd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
