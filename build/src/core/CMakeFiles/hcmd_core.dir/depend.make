# Empty dependencies file for hcmd_core.
# This may be replaced when dependencies are built.
