file(REMOVE_RECURSE
  "libhcmd_core.a"
)
