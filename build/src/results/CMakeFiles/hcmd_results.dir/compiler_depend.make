# Empty compiler generated dependencies file for hcmd_results.
# This may be replaced when dependencies are built.
