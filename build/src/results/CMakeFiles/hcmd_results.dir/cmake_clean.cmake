file(REMOVE_RECURSE
  "CMakeFiles/hcmd_results.dir/archive.cpp.o"
  "CMakeFiles/hcmd_results.dir/archive.cpp.o.d"
  "CMakeFiles/hcmd_results.dir/result_file.cpp.o"
  "CMakeFiles/hcmd_results.dir/result_file.cpp.o.d"
  "CMakeFiles/hcmd_results.dir/storage.cpp.o"
  "CMakeFiles/hcmd_results.dir/storage.cpp.o.d"
  "CMakeFiles/hcmd_results.dir/verification.cpp.o"
  "CMakeFiles/hcmd_results.dir/verification.cpp.o.d"
  "libhcmd_results.a"
  "libhcmd_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcmd_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
