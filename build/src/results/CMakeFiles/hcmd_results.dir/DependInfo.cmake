
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/results/archive.cpp" "src/results/CMakeFiles/hcmd_results.dir/archive.cpp.o" "gcc" "src/results/CMakeFiles/hcmd_results.dir/archive.cpp.o.d"
  "/root/repo/src/results/result_file.cpp" "src/results/CMakeFiles/hcmd_results.dir/result_file.cpp.o" "gcc" "src/results/CMakeFiles/hcmd_results.dir/result_file.cpp.o.d"
  "/root/repo/src/results/storage.cpp" "src/results/CMakeFiles/hcmd_results.dir/storage.cpp.o" "gcc" "src/results/CMakeFiles/hcmd_results.dir/storage.cpp.o.d"
  "/root/repo/src/results/verification.cpp" "src/results/CMakeFiles/hcmd_results.dir/verification.cpp.o" "gcc" "src/results/CMakeFiles/hcmd_results.dir/verification.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/docking/CMakeFiles/hcmd_docking.dir/DependInfo.cmake"
  "/root/repo/build/src/packaging/CMakeFiles/hcmd_packaging.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hcmd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/hcmd_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/proteins/CMakeFiles/hcmd_proteins.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
