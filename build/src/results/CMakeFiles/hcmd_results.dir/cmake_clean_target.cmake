file(REMOVE_RECURSE
  "libhcmd_results.a"
)
