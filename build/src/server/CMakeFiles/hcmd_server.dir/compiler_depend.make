# Empty compiler generated dependencies file for hcmd_server.
# This may be replaced when dependencies are built.
