file(REMOVE_RECURSE
  "CMakeFiles/hcmd_server.dir/credit.cpp.o"
  "CMakeFiles/hcmd_server.dir/credit.cpp.o.d"
  "CMakeFiles/hcmd_server.dir/server.cpp.o"
  "CMakeFiles/hcmd_server.dir/server.cpp.o.d"
  "CMakeFiles/hcmd_server.dir/share_schedule.cpp.o"
  "CMakeFiles/hcmd_server.dir/share_schedule.cpp.o.d"
  "libhcmd_server.a"
  "libhcmd_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcmd_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
