file(REMOVE_RECURSE
  "libhcmd_server.a"
)
