file(REMOVE_RECURSE
  "CMakeFiles/hcmd_client.dir/agent.cpp.o"
  "CMakeFiles/hcmd_client.dir/agent.cpp.o.d"
  "libhcmd_client.a"
  "libhcmd_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcmd_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
