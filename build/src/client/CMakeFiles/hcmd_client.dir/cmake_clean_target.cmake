file(REMOVE_RECURSE
  "libhcmd_client.a"
)
