# Empty dependencies file for hcmd_client.
# This may be replaced when dependencies are built.
