
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/docking/cell_list.cpp" "src/docking/CMakeFiles/hcmd_docking.dir/cell_list.cpp.o" "gcc" "src/docking/CMakeFiles/hcmd_docking.dir/cell_list.cpp.o.d"
  "/root/repo/src/docking/energy.cpp" "src/docking/CMakeFiles/hcmd_docking.dir/energy.cpp.o" "gcc" "src/docking/CMakeFiles/hcmd_docking.dir/energy.cpp.o.d"
  "/root/repo/src/docking/energy_map.cpp" "src/docking/CMakeFiles/hcmd_docking.dir/energy_map.cpp.o" "gcc" "src/docking/CMakeFiles/hcmd_docking.dir/energy_map.cpp.o.d"
  "/root/repo/src/docking/maxdo.cpp" "src/docking/CMakeFiles/hcmd_docking.dir/maxdo.cpp.o" "gcc" "src/docking/CMakeFiles/hcmd_docking.dir/maxdo.cpp.o.d"
  "/root/repo/src/docking/minimizer.cpp" "src/docking/CMakeFiles/hcmd_docking.dir/minimizer.cpp.o" "gcc" "src/docking/CMakeFiles/hcmd_docking.dir/minimizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proteins/CMakeFiles/hcmd_proteins.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hcmd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
