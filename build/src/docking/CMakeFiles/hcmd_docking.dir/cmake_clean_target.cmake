file(REMOVE_RECURSE
  "libhcmd_docking.a"
)
