file(REMOVE_RECURSE
  "CMakeFiles/hcmd_docking.dir/cell_list.cpp.o"
  "CMakeFiles/hcmd_docking.dir/cell_list.cpp.o.d"
  "CMakeFiles/hcmd_docking.dir/energy.cpp.o"
  "CMakeFiles/hcmd_docking.dir/energy.cpp.o.d"
  "CMakeFiles/hcmd_docking.dir/energy_map.cpp.o"
  "CMakeFiles/hcmd_docking.dir/energy_map.cpp.o.d"
  "CMakeFiles/hcmd_docking.dir/maxdo.cpp.o"
  "CMakeFiles/hcmd_docking.dir/maxdo.cpp.o.d"
  "CMakeFiles/hcmd_docking.dir/minimizer.cpp.o"
  "CMakeFiles/hcmd_docking.dir/minimizer.cpp.o.d"
  "libhcmd_docking.a"
  "libhcmd_docking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcmd_docking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
