# Empty compiler generated dependencies file for hcmd_docking.
# This may be replaced when dependencies are built.
