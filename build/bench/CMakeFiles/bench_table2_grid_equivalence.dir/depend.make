# Empty dependencies file for bench_table2_grid_equivalence.
# This may be replaced when dependencies are built.
