file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_grid_equivalence.dir/bench_table2_grid_equivalence.cpp.o"
  "CMakeFiles/bench_table2_grid_equivalence.dir/bench_table2_grid_equivalence.cpp.o.d"
  "bench_table2_grid_equivalence"
  "bench_table2_grid_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_grid_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
