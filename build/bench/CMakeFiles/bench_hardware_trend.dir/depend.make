# Empty dependencies file for bench_hardware_trend.
# This may be replaced when dependencies are built.
