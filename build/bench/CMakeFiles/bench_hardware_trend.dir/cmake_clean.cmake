file(REMOVE_RECURSE
  "CMakeFiles/bench_hardware_trend.dir/bench_hardware_trend.cpp.o"
  "CMakeFiles/bench_hardware_trend.dir/bench_hardware_trend.cpp.o.d"
  "bench_hardware_trend"
  "bench_hardware_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hardware_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
