# Empty compiler generated dependencies file for bench_ablation_speeddown.
# This may be replaced when dependencies are built.
