file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_speeddown.dir/bench_ablation_speeddown.cpp.o"
  "CMakeFiles/bench_ablation_speeddown.dir/bench_ablation_speeddown.cpp.o.d"
  "bench_ablation_speeddown"
  "bench_ablation_speeddown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_speeddown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
