# Empty compiler generated dependencies file for hcmd_bench_common.
# This may be replaced when dependencies are built.
