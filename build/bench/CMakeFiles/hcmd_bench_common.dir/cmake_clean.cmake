file(REMOVE_RECURSE
  "CMakeFiles/hcmd_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/hcmd_bench_common.dir/bench_common.cpp.o.d"
  "libhcmd_bench_common.a"
  "libhcmd_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcmd_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
