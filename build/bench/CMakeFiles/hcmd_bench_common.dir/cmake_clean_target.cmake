file(REMOVE_RECURSE
  "libhcmd_bench_common.a"
)
