file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6b_results.dir/bench_fig6b_results.cpp.o"
  "CMakeFiles/bench_fig6b_results.dir/bench_fig6b_results.cpp.o.d"
  "bench_fig6b_results"
  "bench_fig6b_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
