# Empty dependencies file for bench_fig7_progression.
# This may be replaced when dependencies are built.
