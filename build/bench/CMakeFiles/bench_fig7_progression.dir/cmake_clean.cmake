file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_progression.dir/bench_fig7_progression.cpp.o"
  "CMakeFiles/bench_fig7_progression.dir/bench_fig7_progression.cpp.o.d"
  "bench_fig7_progression"
  "bench_fig7_progression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_progression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
