file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_packaging.dir/bench_ablation_packaging.cpp.o"
  "CMakeFiles/bench_ablation_packaging.dir/bench_ablation_packaging.cpp.o.d"
  "bench_ablation_packaging"
  "bench_ablation_packaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_packaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
