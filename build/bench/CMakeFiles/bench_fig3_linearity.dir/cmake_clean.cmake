file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_linearity.dir/bench_fig3_linearity.cpp.o"
  "CMakeFiles/bench_fig3_linearity.dir/bench_fig3_linearity.cpp.o.d"
  "bench_fig3_linearity"
  "bench_fig3_linearity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_linearity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
