# Empty compiler generated dependencies file for bench_fig3_linearity.
# This may be replaced when dependencies are built.
