file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_real_workunits.dir/bench_fig8_real_workunits.cpp.o"
  "CMakeFiles/bench_fig8_real_workunits.dir/bench_fig8_real_workunits.cpp.o.d"
  "bench_fig8_real_workunits"
  "bench_fig8_real_workunits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_real_workunits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
