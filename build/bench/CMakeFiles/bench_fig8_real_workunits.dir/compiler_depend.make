# Empty compiler generated dependencies file for bench_fig8_real_workunits.
# This may be replaced when dependencies are built.
