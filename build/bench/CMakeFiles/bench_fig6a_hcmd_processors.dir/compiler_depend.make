# Empty compiler generated dependencies file for bench_fig6a_hcmd_processors.
# This may be replaced when dependencies are built.
