file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6a_hcmd_processors.dir/bench_fig6a_hcmd_processors.cpp.o"
  "CMakeFiles/bench_fig6a_hcmd_processors.dir/bench_fig6a_hcmd_processors.cpp.o.d"
  "bench_fig6a_hcmd_processors"
  "bench_fig6a_hcmd_processors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6a_hcmd_processors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
