file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_wcg_vftp.dir/bench_fig1_wcg_vftp.cpp.o"
  "CMakeFiles/bench_fig1_wcg_vftp.dir/bench_fig1_wcg_vftp.cpp.o.d"
  "bench_fig1_wcg_vftp"
  "bench_fig1_wcg_vftp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_wcg_vftp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
