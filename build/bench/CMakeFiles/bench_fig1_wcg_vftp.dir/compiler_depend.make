# Empty compiler generated dependencies file for bench_fig1_wcg_vftp.
# This may be replaced when dependencies are built.
