file(REMOVE_RECURSE
  "CMakeFiles/bench_credit_estimation.dir/bench_credit_estimation.cpp.o"
  "CMakeFiles/bench_credit_estimation.dir/bench_credit_estimation.cpp.o.d"
  "bench_credit_estimation"
  "bench_credit_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_credit_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
