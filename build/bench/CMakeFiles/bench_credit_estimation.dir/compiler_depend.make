# Empty compiler generated dependencies file for bench_credit_estimation.
# This may be replaced when dependencies are built.
