file(REMOVE_RECURSE
  "CMakeFiles/bench_phase2_simulation.dir/bench_phase2_simulation.cpp.o"
  "CMakeFiles/bench_phase2_simulation.dir/bench_phase2_simulation.cpp.o.d"
  "bench_phase2_simulation"
  "bench_phase2_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_phase2_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
