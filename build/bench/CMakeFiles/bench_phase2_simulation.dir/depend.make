# Empty dependencies file for bench_phase2_simulation.
# This may be replaced when dependencies are built.
