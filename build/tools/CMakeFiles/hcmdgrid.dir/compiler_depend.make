# Empty compiler generated dependencies file for hcmdgrid.
# This may be replaced when dependencies are built.
