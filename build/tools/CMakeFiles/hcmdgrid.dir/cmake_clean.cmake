file(REMOVE_RECURSE
  "CMakeFiles/hcmdgrid.dir/hcmdgrid.cpp.o"
  "CMakeFiles/hcmdgrid.dir/hcmdgrid.cpp.o.d"
  "hcmdgrid"
  "hcmdgrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcmdgrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
