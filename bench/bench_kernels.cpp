// google-benchmark microbenchmarks for the hot kernels: interaction energy,
// minimiser steps, the event queue, the scheduler RPC path and the
// packaging stream.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <vector>

#include "bench_memory.hpp"
#include "client/wire.hpp"
#include "server/net.hpp"
#include "server/service.hpp"
#include "core/campaign.hpp"
#include "docking/cell_list.hpp"
#include "docking/engine.hpp"
#include "docking/maxdo.hpp"
#include "packaging/packager.hpp"
#include "proteins/generator.hpp"
#include "server/server.hpp"
#include "sim/simulation.hpp"
#include "timing/mct_matrix.hpp"
#include "util/rng.hpp"

namespace {

using namespace hcmd;

// ---------------------------------------------------------------------------
// The seed DES engine, kept verbatim as the event-queue baseline: a
// std::priority_queue of events carrying a std::function (heap-allocating
// per capture over two pointers) and a shared_ptr<EventState> handle
// (another allocation), with lazy cancellation (tombstones pop at fire
// time) and a copy of the top Event out of the queue on every dispatch.
// The engine:0 rows below measure this; engine:1 rows measure
// sim::Simulation (pooled arena + indexed 4-ary heap + SmallFn).
// ---------------------------------------------------------------------------
class LegacySim {
 public:
  enum class EventState : std::uint8_t { kPending, kFired, kCancelled };

  class Handle {
   public:
    Handle() = default;
    explicit Handle(std::shared_ptr<EventState> state)
        : state_(std::move(state)) {}
    bool pending() const {
      return state_ && *state_ == EventState::kPending;
    }
    bool cancel() {
      if (!pending()) return false;
      *state_ = EventState::kCancelled;
      return true;
    }

   private:
    std::shared_ptr<EventState> state_;
  };

  double now() const { return now_; }
  std::uint64_t processed_events() const { return processed_; }

  Handle schedule_at(double t, std::function<void()> fn) {
    auto state = std::make_shared<EventState>(EventState::kPending);
    queue_.push(Event{t, next_seq_++, std::move(fn), state});
    return Handle(std::move(state));
  }

  Handle schedule_periodic(double start, double period,
                           std::function<bool(double)> fn) {
    auto state = std::make_shared<EventState>(EventState::kPending);
    auto shared_fn =
        std::make_shared<std::function<bool(double)>>(std::move(fn));
    auto recur = std::make_shared<std::function<void()>>();
    *recur = [this, period, shared_fn, state, recur] {
      if (!(*shared_fn)(now_)) {
        *state = EventState::kCancelled;
        return;
      }
      if (*state == EventState::kCancelled) return;
      *state = EventState::kPending;
      queue_.push(Event{now_ + period, next_seq_++, *recur, state});
    };
    queue_.push(Event{start, next_seq_++, *recur, state});
    return Handle(std::move(state));
  }

  bool step() {
    while (!queue_.empty()) {
      Event ev = queue_.top();  // the seed's per-dispatch copy
      queue_.pop();
      if (*ev.state == EventState::kCancelled) continue;
      now_ = ev.time;
      *ev.state = EventState::kFired;
      ev.fn();
      ++processed_;
      return true;
    }
    return false;
  }

  std::uint64_t run_until(
      double until = std::numeric_limits<double>::infinity()) {
    std::uint64_t ran = 0;
    while (!queue_.empty() && queue_.top().time <= until) {
      if (step()) ++ran;
    }
    return ran;
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<EventState> state;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

void BM_InteractionEnergy(benchmark::State& state) {
  const auto receptor = proteins::generate_protein(
      1, static_cast<std::uint32_t>(state.range(0)), 1.0, 11);
  const auto ligand = proteins::generate_protein(
      2, static_cast<std::uint32_t>(state.range(0)), 1.0, 12);
  proteins::Dof6 pose;
  pose.x = receptor.bounding_radius() + ligand.bounding_radius() + 2.0;
  const docking::EnergyParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(docking::interaction_energy(
        receptor, ligand, pose.to_transform(), params));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(receptor.size()) *
                          static_cast<std::int64_t>(ligand.size()));
}
BENCHMARK(BM_InteractionEnergy)->Arg(50)->Arg(150)->Arg(400)->Arg(1200);

void BM_InteractionEnergyCellList(benchmark::State& state) {
  const auto receptor = proteins::generate_protein(
      1, static_cast<std::uint32_t>(state.range(0)), 1.0, 11);
  const auto ligand = proteins::generate_protein(
      2, static_cast<std::uint32_t>(state.range(0)), 1.0, 12);
  proteins::Dof6 pose;
  pose.x = receptor.bounding_radius() + ligand.bounding_radius() + 2.0;
  const docking::EnergyParams params;
  const docking::ReceptorCellGrid grid(receptor, params.cutoff);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        grid.interaction_energy(ligand, pose.to_transform(), params));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(receptor.size()) *
                          static_cast<std::int64_t>(ligand.size()));
}
BENCHMARK(BM_InteractionEnergyCellList)->Arg(50)->Arg(150)->Arg(400)->Arg(1200);

void BM_InteractionEnergyEngine(benchmark::State& state) {
  const auto receptor = proteins::generate_protein(
      1, static_cast<std::uint32_t>(state.range(0)), 1.0, 11);
  const auto ligand = proteins::generate_protein(
      2, static_cast<std::uint32_t>(state.range(0)), 1.0, 12);
  proteins::Dof6 pose;
  pose.x = receptor.bounding_radius() + ligand.bounding_radius() + 2.0;
  const docking::DockingEngine engine(receptor, ligand,
                                      docking::EnergyParams{});
  auto scratch = engine.make_scratch();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.energy(pose.to_transform(), scratch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(receptor.size()) *
                          static_cast<std::int64_t>(ligand.size()));
}
BENCHMARK(BM_InteractionEnergyEngine)->Arg(50)->Arg(150)->Arg(400)->Arg(1200);

// Minimiser hot path, legacy flat sweep (arg 0) vs DockingEngine with
// cell-list pruning + SoA + scratch reuse (arg 1), across receptor sizes.
// The engine/flat ratio at >= 400 atoms is the PR's acceptance metric,
// snapshotted in BENCH_kernels.json.
void BM_Minimize(benchmark::State& state) {
  const bool use_engine = state.range(0) != 0;
  const auto n_atoms = static_cast<std::uint32_t>(state.range(1));
  const auto receptor = proteins::generate_protein(1, n_atoms, 1.0, 13);
  const auto ligand = proteins::generate_protein(2, 60, 1.1, 14);
  proteins::Dof6 start;
  start.x = receptor.bounding_radius() + ligand.bounding_radius() + 4.0;
  const docking::EnergyParams energy;
  docking::MinimizerParams params;
  params.max_iterations = 10;
  if (use_engine) {
    const docking::DockingEngine engine(receptor, ligand, energy);
    auto scratch = engine.make_scratch();
    for (auto _ : state) {
      benchmark::DoNotOptimize(
          docking::minimize(engine, start, params, scratch));
    }
  } else {
    for (auto _ : state) {
      benchmark::DoNotOptimize(
          docking::minimize(receptor, ligand, start, energy, params));
    }
  }
}
BENCHMARK(BM_Minimize)
    ->ArgNames({"engine", "atoms"})
    ->Args({0, 80})
    ->Args({1, 80})
    ->Args({0, 400})
    ->Args({1, 400})
    ->Args({0, 1200})
    ->Args({1, 1200});

// Lockstep batch minimisation vs B sequential scalar minimisations over
// the same starts (batch:0 = scalar loop, batch:1 = minimize_batch). The
// batch/scalar ratio at a given (atoms, lanes) is the SIMD amortisation
// win: one receptor traversal serves all lanes, and results are
// bit-identical either way (docking_batch_test enforces it).
void BM_MinimizeBatch(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  const auto n_atoms = static_cast<std::uint32_t>(state.range(1));
  const auto lanes = static_cast<std::size_t>(state.range(2));
  const auto receptor = proteins::generate_protein(1, n_atoms, 1.0, 13);
  const auto ligand = proteins::generate_protein(2, 60, 1.1, 14);
  const docking::DockingEngine engine(receptor, ligand,
                                      docking::EnergyParams{});
  docking::MinimizerParams params;
  params.max_iterations = 10;
  std::vector<proteins::Dof6> starts(lanes);
  for (std::size_t b = 0; b < lanes; ++b) {
    starts[b].x = receptor.bounding_radius() * 0.6;
    starts[b].gamma = 0.6 * static_cast<double>(b);  // the 10 gamma starts
  }
  std::vector<docking::MinimizationResult> results(lanes);
  if (batched) {
    docking::BatchMinimizerWork work;
    work.scratch = engine.make_batch_scratch(12 * lanes);
    for (auto _ : state) {
      docking::minimize_batch(engine, starts, params, work, results);
      benchmark::DoNotOptimize(results.data());
    }
  } else {
    auto scratch = engine.make_scratch();
    for (auto _ : state) {
      for (std::size_t b = 0; b < lanes; ++b)
        results[b] = docking::minimize(engine, starts[b], params, scratch);
      benchmark::DoNotOptimize(results.data());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lanes));
}
BENCHMARK(BM_MinimizeBatch)
    ->ArgNames({"batch", "atoms", "lanes"})
    ->Args({0, 400, 10})
    ->Args({1, 400, 10})
    ->Args({0, 1200, 10})
    ->Args({1, 1200, 10});

// One full MaxDo starting position (all 21 rotation couples, the paper's
// 10 gamma starts each): flat reference backend (engine 0) vs the engine's
// cell-list backend (engine 1), scalar gamma loop (batch 0) vs lockstep
// gamma batching (batch 1). The batch:1/batch:0 cell-list ratio at 1200
// atoms is the PR's acceptance metric, snapshotted in BENCH_kernels.json.
void BM_MaxDoPosition(benchmark::State& state) {
  const auto n_atoms = static_cast<std::uint32_t>(state.range(1));
  const auto receptor = proteins::generate_protein(1, n_atoms, 1.0, 13);
  const auto ligand = proteins::generate_protein(2, 60, 1.1, 14);
  docking::MaxDoParams params;
  params.minimizer.max_iterations = 5;
  params.engine.backend = state.range(0) != 0
                              ? docking::EnergyBackend::kCellList
                              : docking::EnergyBackend::kFlat;
  params.batch_gamma = state.range(2) != 0;
  docking::MaxDoProgram program(receptor, ligand, params);
  docking::MaxDoTask task;
  task.isep_begin = 0;
  task.isep_end = 1;
  for (auto _ : state) {
    docking::MaxDoCheckpoint cp;
    program.run(task, cp);
    benchmark::DoNotOptimize(cp.records.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(task.rotations()));
}
BENCHMARK(BM_MaxDoPosition)
    ->ArgNames({"engine", "atoms", "batch"})
    ->Args({0, 400, 0})
    ->Args({1, 400, 0})
    ->Args({1, 400, 1})
    ->Args({1, 1200, 0})
    ->Args({1, 1200, 1});

// A callable sized like the simulator's own (the agent and transitioner
// lambdas capture 24-40 bytes: an object pointer plus ids and a deadline).
// It fits SmallFn's 48-byte buffer but overflows std::function's small
// buffer, so the legacy engine pays its real-world allocation per schedule
// *and* per top-copy.
struct AppCallback {
  std::uint64_t* fired;
  std::uint64_t result_id;
  double deadline;
  void* server;
  void operator()() const { ++*fired; }
};

// Steady-state schedule/fire churn at a constant pending depth, in two
// shapes:
//  * mix:0 — pure one-shot churn: each iteration schedules one event
//    (uniform horizon) and dispatches one. Isolates the raw queue cost.
//  * mix:1 — the F6a server's event lifecycle around one result: schedule
//    a completion (fires) and a deadline timer (cancelled later, since
//    reports overwhelmingly beat their ~12-day deadlines), dispatch one
//    event, cancel the deadline armed ~pending/2 iterations ago. The
//    legacy engine drags every cancelled deadline through the heap as a
//    tombstone (its raw queue runs ~3x deeper than the live count); the
//    indexed heap removes it eagerly in O(log n).
// items == events dispatched.
template <typename Sim>
void event_queue_churn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(1));
  const bool app_mix = state.range(2) != 0;
  Sim sim;
  util::Rng rng(7);
  std::uint64_t fired = 0;
  AppCallback cb{&fired, 42, 1e6, nullptr};
  if (!app_mix) {
    for (std::size_t i = 0; i < n; ++i)
      sim.schedule_at(rng.uniform(0.0, 1e6), cb);
    for (auto _ : state) {
      sim.schedule_at(sim.now() + rng.uniform(1.0, 1e6), cb);
      sim.step();
    }
  } else {
    std::vector<decltype(sim.schedule_at(0.0, cb))> deadlines(n);
    for (std::size_t i = 0; i < n / 2; ++i)
      sim.schedule_at(rng.uniform(0.0, 1e6), cb);
    for (std::size_t i = 0; i < n / 2; ++i)
      deadlines[i] = sim.schedule_at(2e6 + rng.uniform(0.0, 1e6), cb);
    std::size_t di = n / 2;
    for (auto _ : state) {
      sim.schedule_at(sim.now() + rng.uniform(1.0, 1e6), cb);
      deadlines[di % n] =
          sim.schedule_at(sim.now() + 2e6 + rng.uniform(0.0, 1e6), cb);
      sim.step();
      deadlines[(di + n / 2) % n].cancel();
      ++di;
    }
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations());
}

void BM_EventQueue(benchmark::State& state) {
  if (state.range(0) != 0) {
    event_queue_churn<sim::Simulation>(state);
  } else {
    event_queue_churn<LegacySim>(state);
  }
}
BENCHMARK(BM_EventQueue)
    ->ArgNames({"engine", "pending", "mix"})
    ->Args({0, 10'000, 0})
    ->Args({1, 10'000, 0})
    ->Args({0, 100'000, 0})
    ->Args({1, 100'000, 0})
    ->Args({0, 1'000'000, 0})
    ->Args({1, 1'000'000, 0})
    ->Args({0, 10'000, 1})
    ->Args({1, 10'000, 1})
    ->Args({0, 100'000, 1})
    ->Args({1, 100'000, 1})
    ->Args({0, 1'000'000, 1})
    ->Args({1, 1'000'000, 1});

// Deadline-heavy workload: per round, schedule `n` timers and cancel 90 %
// of them before they can fire (the transitioner retires most deadlines
// early), then drain the rest. The legacy engine drags every cancelled
// timer through the heap as a tombstone; the indexed heap removes it
// eagerly. items == timers scheduled.
template <typename Sim>
void event_cancel_churn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(1));
  Sim sim;
  util::Rng rng(11);
  std::uint64_t fired = 0;
  auto tick = [&fired] { ++fired; };
  std::vector<decltype(sim.schedule_at(0.0, tick))> handles;
  handles.reserve(n);
  for (auto _ : state) {
    handles.clear();
    const double base = sim.now();
    for (std::size_t i = 0; i < n; ++i)
      handles.push_back(sim.schedule_at(base + rng.uniform(1.0, 1e4), tick));
    for (std::size_t i = 0; i < n; ++i)
      if (i % 10 != 0) handles[i].cancel();
    sim.run_until();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void BM_EventCancel(benchmark::State& state) {
  if (state.range(0) != 0) {
    event_cancel_churn<sim::Simulation>(state);
  } else {
    event_cancel_churn<LegacySim>(state);
  }
}
BENCHMARK(BM_EventCancel)
    ->ArgNames({"engine", "timers"})
    ->Args({0, 10'000})
    ->Args({1, 10'000})
    ->Args({0, 100'000})
    ->Args({1, 100'000});

// Periodic series cost: `series` concurrent recurring timers (the metric
// gauges and completion ticks), advanced 256 mean periods per iteration.
// The new engine re-arms each node in place; the legacy one re-pushes a
// fresh std::function event per occurrence. items == occurrences fired.
template <typename Sim>
void periodic_churn(benchmark::State& state) {
  const auto series = static_cast<std::size_t>(state.range(1));
  Sim sim;
  util::Rng rng(13);
  std::uint64_t fired = 0;
  for (std::size_t i = 0; i < series; ++i) {
    sim.schedule_periodic(rng.uniform(0.0, 1.0), rng.uniform(0.5, 1.5),
                          [&fired](double) {
                            ++fired;
                            return true;
                          });
  }
  for (auto _ : state) {
    sim.run_until(sim.now() + 256.0);
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.processed_events()));
}

void BM_SchedulePeriodic(benchmark::State& state) {
  if (state.range(0) != 0) {
    periodic_churn<sim::Simulation>(state);
  } else {
    periodic_churn<LegacySim>(state);
  }
}
BENCHMARK(BM_SchedulePeriodic)
    ->ArgNames({"engine", "series"})
    ->Args({0, 256})
    ->Args({1, 256});

// One simulated week of the Fig. 6(a) campaign scenario end to end
// (workload build + fleet + DES) at the benches' standard scale: the
// macro number the kernel work is in service of. items == results the
// server received in that week.
void BM_CampaignWeek(benchmark::State& state) {
  std::uint64_t received = 0;
  bench::mem::reset_peak();
  const auto heap_before = bench::mem::heap_stats();
  for (auto _ : state) {
    core::CampaignConfig config;
    config.scale = 0.04;  // the benches' standard 1/25 scale
    config.max_weeks = 1.0;
    const core::CampaignReport r = core::run_campaign(config);
    received += r.counters.results_received;
    benchmark::DoNotOptimize(r.counters.results_received);
  }
  const auto heap_after = bench::mem::heap_stats();
  state.SetItemsProcessed(static_cast<std::int64_t>(received));
  state.counters["heap_peak_mb"] =
      static_cast<double>(heap_after.peak_live_bytes) / (1024.0 * 1024.0);
  state.counters["allocs_per_iter"] =
      static_cast<double>(heap_after.allocations - heap_before.allocations) /
      static_cast<double>(state.iterations());
  state.counters["rss_peak_mb"] =
      static_cast<double>(bench::mem::os_peak_rss_bytes()) / (1024.0 * 1024.0);
}
BENCHMARK(BM_CampaignWeek);

// Same campaign week with the full telemetry stack attached: a Tracer at
// default sampling plus the weekly-progress callback. The acceptance bar is
// telemetry-on <= 1.05x telemetry-off; the `trace_events` counter confirms
// the tracer actually recorded (i.e. this is not a no-op run).
void BM_CampaignWeekTelemetry(benchmark::State& state) {
  std::uint64_t received = 0;
  std::uint64_t recorded = 0;
  for (auto _ : state) {
    core::CampaignConfig config;
    config.scale = 0.04;
    config.max_weeks = 1.0;
    obs::Tracer tracer;  // default capacity + sampling rates
    core::CampaignInstruments instruments;
    instruments.tracer = &tracer;
    instruments.on_week = [](const core::WeeklyProgress& progress) {
      benchmark::DoNotOptimize(progress.results_received);
    };
    const core::CampaignReport r = core::run_campaign(config, instruments);
    received += r.counters.results_received;
    recorded += tracer.recorded();
    benchmark::DoNotOptimize(r.counters.results_received);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(received));
  state.counters["trace_events"] =
      static_cast<double>(recorded) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_CampaignWeekTelemetry);

// The adaptive reputation ledger's bookkeeping cost, isolated. Both rows
// run the same campaign week with replication fully off — policy:0 is the
// fixed policy at quorum2_until 0 / spot_check_fraction 0 (bernoulli(0)
// short-circuits, so no server-RNG draw), policy:1 is the adaptive policy
// at trust_threshold 0 / spot_check_every 0 (every device trusted on first
// contact, never spot-checked). The issue schedule and event stream are
// therefore identical; the policy:1 / policy:0 real_time ratio is pure
// ledger overhead (per-device score slots, decay evaluation, result-event
// dispatch). tools/bench_gate.py gates the same-run ratio at 1.05x.
void BM_CampaignAdaptivePolicy(benchmark::State& state) {
  const bool adaptive = state.range(0) != 0;
  std::uint64_t received = 0;
  std::uint64_t decisions = 0;
  for (auto _ : state) {
    core::CampaignConfig config;
    config.scale = 0.04;
    config.max_weeks = 1.0;
    if (adaptive) {
      config.server.policy = server::PolicyKind::kAdaptiveTrust;
      config.server.adaptive_trust.trust_threshold = 0.0;
      config.server.adaptive_trust.spot_check_every = 0;
    } else {
      config.server.validation.quorum2_until = 0.0;
      config.server.validation.spot_check_fraction = 0.0;
    }
    const core::CampaignReport r = core::run_campaign(config);
    received += r.counters.results_received;
    decisions += r.validation.policy.counters.decisions;
    benchmark::DoNotOptimize(r.counters.results_received);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(received));
  state.counters["decisions"] =
      static_cast<double>(decisions) / static_cast<double>(state.iterations());
}
// At ~40 ms per campaign week the default 0.5 s window is ~12 iterations —
// too few for a same-run ratio gated at 1.05x on shared runners. Three
// 1-second repetitions per arm, reported as aggregates including a min
// statistic: scheduler noise and box drift only ever ADD time, so the
// per-arm minimum is the robust estimator the gate reads for the ratio.
BENCHMARK(BM_CampaignAdaptivePolicy)
    ->ArgName("policy")
    ->Arg(0)
    ->Arg(1)
    ->MinTime(1.0)
    ->Repetitions(3)
    ->ReportAggregatesOnly()
    ->ComputeStatistics("min", [](const std::vector<double>& v) {
      return *std::min_element(v.begin(), v.end());
    });

// Full 26-week campaigns across fleet scales (arg = scale in permille).
// One iteration each: the point is how wall clock and heap peak grow with
// fleet size, not statistical timing precision. The 250-permille point is
// the quarter-scale acceptance run: ~73k devices end to end.
void BM_CampaignScaleSweep(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 1000.0;
  std::uint64_t received = 0;
  std::uint64_t events = 0;
  double completion_weeks = 0.0;
  std::uint64_t devices = 0;
  bench::mem::reset_peak();
  const auto heap_before = bench::mem::heap_stats();
  for (auto _ : state) {
    core::CampaignConfig config;
    config.scale = scale;
    const core::CampaignReport r = core::run_campaign(config);
    received += r.counters.results_received;
    events += r.events_processed;
    completion_weeks = r.completion_weeks;
    devices = r.devices_simulated;
    benchmark::DoNotOptimize(r.counters.results_received);
  }
  const auto heap_after = bench::mem::heap_stats();
  state.SetItemsProcessed(static_cast<std::int64_t>(received));
  state.counters["devices"] = static_cast<double>(devices);
  state.counters["completion_weeks"] = completion_weeks;
  state.counters["heap_peak_mb"] =
      static_cast<double>(heap_after.peak_live_bytes) / (1024.0 * 1024.0);
  state.counters["allocs_per_iter"] =
      static_cast<double>(heap_after.allocations - heap_before.allocations) /
      static_cast<double>(state.iterations());
  // Throughput in simulator terms, for cross-scale comparison: DES events
  // retired per wall second, and simulated device-weeks per wall second
  // (the "how much campaign does a second of CPU buy" figure the
  // extrapolation tables in EXPERIMENTS.md are built from).
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["device_weeks_per_sec"] = benchmark::Counter(
      static_cast<double>(devices) * completion_weeks,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CampaignScaleSweep)
    ->ArgName("permille")
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Arg(100)
    ->Arg(250)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// The sharded engine at the quarter-scale acceptance point: the same
// ~73k-device 26-week campaign run sequentially (shards:1) and partitioned
// across 8 shards (shards:8). The shards:8 / shards:1 wall-clock ratio is
// the PR's acceptance metric (>= 3x on 8 hardware threads); on fewer cores
// the ratio degrades gracefully towards 1x, so the per-run
// device_weeks_per_sec counter is the portable number. Reports are
// bit-identical across the two rows (core_shard_determinism_test enforces
// this at test scale), so the comparison is pure engine overhead.
void BM_CampaignSharded(benchmark::State& state) {
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t received = 0;
  std::uint64_t events = 0;
  double completion_weeks = 0.0;
  std::uint64_t devices = 0;
  for (auto _ : state) {
    core::CampaignConfig config;
    config.scale = 0.25;  // the quarter-scale acceptance run
    config.shards = shards;
    const core::CampaignReport r = core::run_campaign(config);
    received += r.counters.results_received;
    events += r.events_processed;
    completion_weeks = r.completion_weeks;
    devices = r.devices_simulated;
    benchmark::DoNotOptimize(r.counters.results_received);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(received));
  state.counters["devices"] = static_cast<double>(devices);
  state.counters["completion_weeks"] = completion_weeks;
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["device_weeks_per_sec"] = benchmark::Counter(
      static_cast<double>(devices) * completion_weeks,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CampaignSharded)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_SchedulerRpc(benchmark::State& state) {
  std::vector<packaging::Workunit> catalog(100'000);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    catalog[i].id = i;
    catalog[i].receptor = static_cast<std::uint32_t>(i % 168);
    catalog[i].isep_begin = 0;
    catalog[i].isep_end = 10;
    catalog[i].reference_seconds = 3600.0;
  }
  server::ServerConfig cfg;
  cfg.validation.quorum2_until = 0.0;
  cfg.validation.spot_check_fraction = 0.0;
  server::ProjectServer server(std::move(catalog), cfg);
  double now = 0.0;
  std::uint64_t served = 0;
  for (auto _ : state) {
    auto a = server.request_work(1, now);
    if (!a.has_value()) {
      state.SkipWithError("catalogue exhausted; raise the catalogue size");
      break;
    }
    server::ResultReport report;
    report.reported_runtime = 100.0;
    report.reference_seconds = 3600.0;
    server.report_result(a->result_id, now + 1.0, report);
    now += 2.0;
    ++served;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(served));
}
BENCHMARK(BM_SchedulerRpc)->Iterations(50'000);

void BM_PackagingStream(benchmark::State& state) {
  proteins::BenchmarkSpec spec;
  spec.count = 32;
  spec.target_total_nsep = 0;
  spec.outlier_nsep_target = 0;
  const auto bench_set = proteins::generate_benchmark(spec);
  const auto model = timing::CostModel::calibrated(bench_set, 671.0);
  const auto mct = timing::MctMatrix::from_model(bench_set, model);
  packaging::PackagingConfig cfg;
  cfg.target_hours = 4.0;
  for (auto _ : state) {
    std::uint64_t count = packaging::for_each_workunit(
        bench_set, mct, cfg, [](const packaging::Workunit&) {});
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_PackagingStream);

void BM_MctMatrixBuild(benchmark::State& state) {
  const auto bench_set = proteins::generate_benchmark({});
  const auto model = timing::CostModel::calibrated(bench_set, 671.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        timing::MctMatrix::from_model(bench_set, model));
  }
}
BENCHMARK(BM_MctMatrixBuild);

// ---------------------------------------------------------------------------
// Grid service over real sockets: the `hcmdgrid serve` path end to end on
// localhost. Both rows drive a pipelined wire client (256 devices on one
// connection) against a 2-worker server, the deployment shape the serve
// smoke test uses. BM_ServeThroughput reports wall time per RPC burst
// (items/s is the req/s headline the gate gates); BM_ServeIssueP99 reports
// the p99 round-trip of each burst via manual time, so the gated number is
// the latency SLO itself rather than the mean.
// ---------------------------------------------------------------------------
server::ServiceConfig bench_serve_config() {
  server::ServiceConfig config;
  config.server.validation.quorum2_until = 0.0;
  config.server.validation.spot_check_fraction = 0.0;
  return config;
}

/// Arg 0: span instrumentation off (control) or on with the snapshotter at
/// a tight 0.25 s period — the server-side observability overhead the gate
/// holds to 1.05x (tools/bench_gate.py OVERHEADS). Neither arm requests
/// span echoes: the 32-byte reply tail is opt-in and its wire cost lands
/// on the client that asked (loadgen exercises that path), while this gate
/// prices what every client pays when the server instruments itself.
void BM_ServeThroughput(benchmark::State& state) {
  constexpr std::uint32_t kDevices = 256;
  constexpr std::uint32_t kBurst = 1024;
  const bool spans = state.range(0) != 0;
  server::ServiceConfig config = bench_serve_config();
  config.spans = spans;
  server::NetOptions net;
  net.snapshot_period = spans ? 0.25 : 0.0;
  server::GridServer grid(server::synthetic_catalog(400'000, 4.0),
                          std::move(config), net);
  grid.start();
  client::WireClient wire("127.0.0.1", grid.port());
  std::uint64_t seq = 1;
  std::uint64_t served = 0;
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < kBurst; ++i) {
      server::proto::RequestWork m;
      m.device = i % kDevices;
      m.seq = seq++;
      wire.queue(m);
    }
    wire.flush();
    for (std::uint32_t i = 0; i < kBurst; ++i) {
      benchmark::DoNotOptimize(wire.recv_reply());
    }
    served += kBurst;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(served));
  grid.stop();
}
// Iterations are pinned so both arms (and every repetition) push the exact
// same request sequence at the same catalogue: free-running time targets
// let the arms drain different fractions of the 400k assignments, and the
// assignment/no-work mix shift swamps the instrumentation delta the
// spans:1/spans:0 ratio is meant to isolate.
BENCHMARK(BM_ServeThroughput)
    ->ArgName("spans")
    ->Arg(0)
    ->Arg(1)
    ->Iterations(150)
    ->Unit(benchmark::kMillisecond);

void BM_ServeIssueP99(benchmark::State& state) {
  constexpr std::uint32_t kDevices = 256;
  constexpr std::uint32_t kProbe = 512;
  server::GridServer grid(server::synthetic_catalog(400'000, 4.0),
                          bench_serve_config(), server::NetOptions{});
  grid.start();
  client::WireClient wire("127.0.0.1", grid.port());
  std::uint64_t seq = 1;
  std::vector<double> rtts;
  rtts.reserve(kProbe);
  for (auto _ : state) {
    rtts.clear();
    const auto burst_start = std::chrono::steady_clock::now();
    for (std::uint32_t i = 0; i < kProbe; ++i) {
      server::proto::RequestWork m;
      m.device = i % kDevices;
      m.seq = seq++;
      wire.queue(m);
    }
    wire.flush();
    for (std::uint32_t i = 0; i < kProbe; ++i) {
      benchmark::DoNotOptimize(wire.recv_reply());
      rtts.push_back(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - burst_start)
                         .count());
    }
    // Manual time = the burst's p99 round trip: the gated figure is the
    // latency SLO, not the mean.
    std::sort(rtts.begin(), rtts.end());
    state.SetIterationTime(rtts[(kProbe * 99) / 100]);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kProbe));
  grid.stop();
}
BENCHMARK(BM_ServeIssueP99)->UseManualTime()->Unit(benchmark::kMillisecond);

}  // namespace
