// google-benchmark microbenchmarks for the hot kernels: interaction energy,
// minimiser steps, the event queue, the scheduler RPC path and the
// packaging stream.
#include <benchmark/benchmark.h>

#include "docking/cell_list.hpp"
#include "docking/maxdo.hpp"
#include "packaging/packager.hpp"
#include "proteins/generator.hpp"
#include "server/server.hpp"
#include "sim/simulation.hpp"
#include "timing/mct_matrix.hpp"
#include "util/rng.hpp"

namespace {

using namespace hcmd;

void BM_InteractionEnergy(benchmark::State& state) {
  const auto receptor = proteins::generate_protein(
      1, static_cast<std::uint32_t>(state.range(0)), 1.0, 11);
  const auto ligand = proteins::generate_protein(
      2, static_cast<std::uint32_t>(state.range(0)), 1.0, 12);
  proteins::Dof6 pose;
  pose.x = receptor.bounding_radius() + ligand.bounding_radius() + 2.0;
  const docking::EnergyParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(docking::interaction_energy(
        receptor, ligand, pose.to_transform(), params));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(receptor.size()) *
                          static_cast<std::int64_t>(ligand.size()));
}
BENCHMARK(BM_InteractionEnergy)->Arg(50)->Arg(150)->Arg(400)->Arg(1200);

void BM_InteractionEnergyCellList(benchmark::State& state) {
  const auto receptor = proteins::generate_protein(
      1, static_cast<std::uint32_t>(state.range(0)), 1.0, 11);
  const auto ligand = proteins::generate_protein(
      2, static_cast<std::uint32_t>(state.range(0)), 1.0, 12);
  proteins::Dof6 pose;
  pose.x = receptor.bounding_radius() + ligand.bounding_radius() + 2.0;
  const docking::EnergyParams params;
  const docking::ReceptorCellGrid grid(receptor, params.cutoff);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        grid.interaction_energy(ligand, pose.to_transform(), params));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(receptor.size()) *
                          static_cast<std::int64_t>(ligand.size()));
}
BENCHMARK(BM_InteractionEnergyCellList)->Arg(50)->Arg(150)->Arg(400)->Arg(1200);

void BM_Minimize(benchmark::State& state) {
  const auto receptor = proteins::generate_protein(1, 80, 1.0, 13);
  const auto ligand = proteins::generate_protein(2, 60, 1.1, 14);
  proteins::Dof6 start;
  start.x = receptor.bounding_radius() + ligand.bounding_radius() + 4.0;
  const docking::EnergyParams energy;
  docking::MinimizerParams params;
  params.max_iterations = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        docking::minimize(receptor, ligand, start, energy, params));
  }
}
BENCHMARK(BM_Minimize)->Arg(5)->Arg(20)->Arg(40);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    util::Rng rng(7);
    for (std::size_t i = 0; i < n; ++i)
      sim.schedule_at(rng.uniform(0.0, 1e6), [] {});
    sim.run_until();
    benchmark::DoNotOptimize(sim.processed_events());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

void BM_SchedulerRpc(benchmark::State& state) {
  std::vector<packaging::Workunit> catalog(100'000);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    catalog[i].id = i;
    catalog[i].receptor = static_cast<std::uint32_t>(i % 168);
    catalog[i].isep_begin = 0;
    catalog[i].isep_end = 10;
    catalog[i].reference_seconds = 3600.0;
  }
  server::ServerConfig cfg;
  cfg.validation.quorum2_until = 0.0;
  cfg.validation.spot_check_fraction = 0.0;
  server::ProjectServer server(std::move(catalog), cfg);
  double now = 0.0;
  std::uint64_t served = 0;
  for (auto _ : state) {
    auto a = server.request_work(1, now);
    if (!a.has_value()) {
      state.SkipWithError("catalogue exhausted; raise the catalogue size");
      break;
    }
    server::ResultReport report;
    report.reported_runtime = 100.0;
    report.reference_seconds = 3600.0;
    server.report_result(a->result_id, now + 1.0, report);
    now += 2.0;
    ++served;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(served));
}
BENCHMARK(BM_SchedulerRpc)->Iterations(50'000);

void BM_PackagingStream(benchmark::State& state) {
  proteins::BenchmarkSpec spec;
  spec.count = 32;
  spec.target_total_nsep = 0;
  spec.outlier_nsep_target = 0;
  const auto bench_set = proteins::generate_benchmark(spec);
  const auto model = timing::CostModel::calibrated(bench_set, 671.0);
  const auto mct = timing::MctMatrix::from_model(bench_set, model);
  packaging::PackagingConfig cfg;
  cfg.target_hours = 4.0;
  for (auto _ : state) {
    std::uint64_t count = packaging::for_each_workunit(
        bench_set, mct, cfg, [](const packaging::Workunit&) {});
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_PackagingStream);

void BM_MctMatrixBuild(benchmark::State& state) {
  const auto bench_set = proteins::generate_benchmark({});
  const auto model = timing::CostModel::calibrated(bench_set, 671.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        timing::MctMatrix::from_model(bench_set, model));
  }
}
BENCHMARK(BM_MctMatrixBuild);

}  // namespace
