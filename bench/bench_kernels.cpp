// google-benchmark microbenchmarks for the hot kernels: interaction energy,
// minimiser steps, the event queue, the scheduler RPC path and the
// packaging stream.
#include <benchmark/benchmark.h>

#include "docking/cell_list.hpp"
#include "docking/engine.hpp"
#include "docking/maxdo.hpp"
#include "packaging/packager.hpp"
#include "proteins/generator.hpp"
#include "server/server.hpp"
#include "sim/simulation.hpp"
#include "timing/mct_matrix.hpp"
#include "util/rng.hpp"

namespace {

using namespace hcmd;

void BM_InteractionEnergy(benchmark::State& state) {
  const auto receptor = proteins::generate_protein(
      1, static_cast<std::uint32_t>(state.range(0)), 1.0, 11);
  const auto ligand = proteins::generate_protein(
      2, static_cast<std::uint32_t>(state.range(0)), 1.0, 12);
  proteins::Dof6 pose;
  pose.x = receptor.bounding_radius() + ligand.bounding_radius() + 2.0;
  const docking::EnergyParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(docking::interaction_energy(
        receptor, ligand, pose.to_transform(), params));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(receptor.size()) *
                          static_cast<std::int64_t>(ligand.size()));
}
BENCHMARK(BM_InteractionEnergy)->Arg(50)->Arg(150)->Arg(400)->Arg(1200);

void BM_InteractionEnergyCellList(benchmark::State& state) {
  const auto receptor = proteins::generate_protein(
      1, static_cast<std::uint32_t>(state.range(0)), 1.0, 11);
  const auto ligand = proteins::generate_protein(
      2, static_cast<std::uint32_t>(state.range(0)), 1.0, 12);
  proteins::Dof6 pose;
  pose.x = receptor.bounding_radius() + ligand.bounding_radius() + 2.0;
  const docking::EnergyParams params;
  const docking::ReceptorCellGrid grid(receptor, params.cutoff);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        grid.interaction_energy(ligand, pose.to_transform(), params));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(receptor.size()) *
                          static_cast<std::int64_t>(ligand.size()));
}
BENCHMARK(BM_InteractionEnergyCellList)->Arg(50)->Arg(150)->Arg(400)->Arg(1200);

void BM_InteractionEnergyEngine(benchmark::State& state) {
  const auto receptor = proteins::generate_protein(
      1, static_cast<std::uint32_t>(state.range(0)), 1.0, 11);
  const auto ligand = proteins::generate_protein(
      2, static_cast<std::uint32_t>(state.range(0)), 1.0, 12);
  proteins::Dof6 pose;
  pose.x = receptor.bounding_radius() + ligand.bounding_radius() + 2.0;
  const docking::DockingEngine engine(receptor, ligand,
                                      docking::EnergyParams{});
  auto scratch = engine.make_scratch();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.energy(pose.to_transform(), scratch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(receptor.size()) *
                          static_cast<std::int64_t>(ligand.size()));
}
BENCHMARK(BM_InteractionEnergyEngine)->Arg(50)->Arg(150)->Arg(400)->Arg(1200);

// Minimiser hot path, legacy flat sweep (arg 0) vs DockingEngine with
// cell-list pruning + SoA + scratch reuse (arg 1), across receptor sizes.
// The engine/flat ratio at >= 400 atoms is the PR's acceptance metric,
// snapshotted in BENCH_kernels.json.
void BM_Minimize(benchmark::State& state) {
  const bool use_engine = state.range(0) != 0;
  const auto n_atoms = static_cast<std::uint32_t>(state.range(1));
  const auto receptor = proteins::generate_protein(1, n_atoms, 1.0, 13);
  const auto ligand = proteins::generate_protein(2, 60, 1.1, 14);
  proteins::Dof6 start;
  start.x = receptor.bounding_radius() + ligand.bounding_radius() + 4.0;
  const docking::EnergyParams energy;
  docking::MinimizerParams params;
  params.max_iterations = 10;
  if (use_engine) {
    const docking::DockingEngine engine(receptor, ligand, energy);
    auto scratch = engine.make_scratch();
    for (auto _ : state) {
      benchmark::DoNotOptimize(
          docking::minimize(engine, start, params, scratch));
    }
  } else {
    for (auto _ : state) {
      benchmark::DoNotOptimize(
          docking::minimize(receptor, ligand, start, energy, params));
    }
  }
}
BENCHMARK(BM_Minimize)
    ->ArgNames({"engine", "atoms"})
    ->Args({0, 80})
    ->Args({1, 80})
    ->Args({0, 400})
    ->Args({1, 400})
    ->Args({0, 1200})
    ->Args({1, 1200});

// One full MaxDo starting position (all 21 rotation couples), flat
// reference backend (arg 0) vs the engine's cell-list backend (arg 1).
void BM_MaxDoPosition(benchmark::State& state) {
  const auto receptor = proteins::generate_protein(1, 400, 1.0, 13);
  const auto ligand = proteins::generate_protein(2, 60, 1.1, 14);
  docking::MaxDoParams params;
  params.minimizer.max_iterations = 5;
  params.gamma_steps = 2;
  params.engine.backend = state.range(0) != 0
                              ? docking::EnergyBackend::kCellList
                              : docking::EnergyBackend::kFlat;
  docking::MaxDoProgram program(receptor, ligand, params);
  docking::MaxDoTask task;
  task.isep_begin = 0;
  task.isep_end = 1;
  for (auto _ : state) {
    docking::MaxDoCheckpoint cp;
    program.run(task, cp);
    benchmark::DoNotOptimize(cp.records.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(task.rotations()));
}
BENCHMARK(BM_MaxDoPosition)->ArgNames({"engine"})->Arg(0)->Arg(1);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    util::Rng rng(7);
    for (std::size_t i = 0; i < n; ++i)
      sim.schedule_at(rng.uniform(0.0, 1e6), [] {});
    sim.run_until();
    benchmark::DoNotOptimize(sim.processed_events());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

void BM_SchedulerRpc(benchmark::State& state) {
  std::vector<packaging::Workunit> catalog(100'000);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    catalog[i].id = i;
    catalog[i].receptor = static_cast<std::uint32_t>(i % 168);
    catalog[i].isep_begin = 0;
    catalog[i].isep_end = 10;
    catalog[i].reference_seconds = 3600.0;
  }
  server::ServerConfig cfg;
  cfg.validation.quorum2_until = 0.0;
  cfg.validation.spot_check_fraction = 0.0;
  server::ProjectServer server(std::move(catalog), cfg);
  double now = 0.0;
  std::uint64_t served = 0;
  for (auto _ : state) {
    auto a = server.request_work(1, now);
    if (!a.has_value()) {
      state.SkipWithError("catalogue exhausted; raise the catalogue size");
      break;
    }
    server::ResultReport report;
    report.reported_runtime = 100.0;
    report.reference_seconds = 3600.0;
    server.report_result(a->result_id, now + 1.0, report);
    now += 2.0;
    ++served;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(served));
}
BENCHMARK(BM_SchedulerRpc)->Iterations(50'000);

void BM_PackagingStream(benchmark::State& state) {
  proteins::BenchmarkSpec spec;
  spec.count = 32;
  spec.target_total_nsep = 0;
  spec.outlier_nsep_target = 0;
  const auto bench_set = proteins::generate_benchmark(spec);
  const auto model = timing::CostModel::calibrated(bench_set, 671.0);
  const auto mct = timing::MctMatrix::from_model(bench_set, model);
  packaging::PackagingConfig cfg;
  cfg.target_hours = 4.0;
  for (auto _ : state) {
    std::uint64_t count = packaging::for_each_workunit(
        bench_set, mct, cfg, [](const packaging::Workunit&) {});
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_PackagingStream);

void BM_MctMatrixBuild(benchmark::State& state) {
  const auto bench_set = proteins::generate_benchmark({});
  const auto model = timing::CostModel::calibrated(bench_set, 671.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        timing::MctMatrix::from_model(bench_set, model));
  }
}
BENCHMARK(BM_MctMatrixBuild);

}  // namespace
