// Figure 7 — HCMD project progression snapshots.
//
// Proteins on the X axis (launch order: cheapest receptor first), cumulative
// completion on the Y axis, at the paper's four dates. Headline: on
// 2007-05-02, "85% of the proteins were docked, but this represents only
// 47% of the total computation".
#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace hcmd;
  const core::CampaignReport r = bench::standard_campaign();

  std::printf("Figure 7: HCMD project progression\n\n");
  util::Table table("Snapshots");
  table.header({"date", "proteins docked", "paper", "computation done",
                "paper"});
  const double paper_proteins[4] = {-1, -1, 0.85, 1.0};
  const double paper_comp[4] = {-1, -1, 0.47, 1.0};
  for (std::size_t i = 0; i < r.snapshots.size(); ++i) {
    const auto& s = r.snapshots[i];
    auto pct = [](double v) { return util::Table::cell(100.0 * v, 1) + "%"; };
    table.row({s.label, pct(s.proteins_done_fraction),
               paper_proteins[i] < 0 ? "-" : pct(paper_proteins[i]),
               pct(s.computation_done_fraction),
               paper_comp[i] < 0 ? "-" : pct(paper_comp[i])});
  }
  std::printf("%s\n", table.render().c_str());

  // Per-protein completion bars for the 05-02 snapshot (the paper's most
  // quoted panel), bucketed over the launch order.
  if (r.snapshots.size() >= 3) {
    const auto& snap = r.snapshots[2];
    std::printf("2007-05-02 per-protein completion (launch order, 24 "
                "buckets of 7):\n");
    const std::size_t bucket = (snap.per_protein_fraction.size() + 23) / 24;
    for (std::size_t b = 0; b < snap.per_protein_fraction.size();
         b += bucket) {
      double sum = 0.0;
      std::size_t n = 0;
      for (std::size_t i = b;
           i < std::min(b + bucket, snap.per_protein_fraction.size());
           ++i, ++n)
        sum += snap.per_protein_fraction[i];
      const int bars = static_cast<int>(40.0 * sum / static_cast<double>(n));
      std::printf("  %3zu..%3zu |%-40.*s| %3.0f%%\n", b,
                  b + n - 1, bars,
                  "########################################",
                  100.0 * sum / static_cast<double>(n));
    }
  }

  bench::ShapeCheck check;
  check.expect(r.snapshots.size() == 4, "four snapshot dates captured");
  for (std::size_t i = 1; i < r.snapshots.size(); ++i) {
    check.expect(r.snapshots[i].computation_done_fraction >=
                     r.snapshots[i - 1].computation_done_fraction,
                 "progress is monotone (" + r.snapshots[i].label + ")");
  }
  if (r.snapshots.size() >= 3) {
    const auto& snap = r.snapshots[2];
    check.expect_near(snap.proteins_done_fraction, 0.85, 0.12,
                      "05-02: fraction of proteins docked");
    check.expect(snap.computation_done_fraction <
                     snap.proteins_done_fraction - 0.10,
                 "05-02: computation fraction lags protein fraction "
                 "(cost skew)");
    check.expect_near(snap.computation_done_fraction, 0.47, 0.45,
                      "05-02: computation fraction near the paper's 47%");
  }
  if (r.snapshots.size() == 4) {
    check.expect(r.snapshots[3].computation_done_fraction > 0.95,
                 "06-11: project essentially complete");
  }
  check.print_summary();
  return check.exit_code();
}
