// Figure 3 — MAXDo cost linearity.
//
// (a) at fixed starting position, computing cost is linear in the number of
//     rotations; (b) at fixed rotation, linear in the number of starting
//     positions. The paper verified 400 random couples with correlation
//     ~0.99 and set the intercept to 0. This bench measures the *actual
//     docking kernel* (deterministic pair-term work counts) on a reduced
//     protein set, prints the two swept series, and runs the correlation
//     check over random couples.
#include <cstdio>

#include "bench_common.hpp"
#include "proteins/generator.hpp"
#include "timing/linearity.hpp"
#include "util/table.hpp"

int main() {
  using namespace hcmd;

  // A reduced set keeps the real-kernel sweeps quick; linearity is a
  // structural property, not a scale effect.
  proteins::BenchmarkSpec spec;
  spec.count = 24;
  spec.median_atoms = 60;
  spec.min_atoms = 25;
  spec.max_atoms = 160;
  spec.target_total_nsep = 0;
  spec.outlier_nsep_target = 0;
  const proteins::Benchmark bench_set = proteins::generate_benchmark(spec);

  timing::LinearityParams params;
  params.sweep_points = 7;
  params.max_rotations = proteins::kNumRotationCouples;
  params.max_positions = 14;
  params.maxdo.minimizer.max_iterations = 4;
  params.maxdo.gamma_steps = 2;
  params.maxdo.positions.spacing = 8.0;

  const auto& receptor = bench_set.proteins[0];
  const auto& ligand = bench_set.proteins[1];

  const timing::LinearitySeries rot =
      timing::sweep_rotations(receptor, ligand, params);
  const timing::LinearitySeries pos =
      timing::sweep_positions(receptor, ligand, params);

  util::Table ta("Fig. 3(a): work vs number of rotations (fixed isep)");
  ta.header({"nrot", "work (pair terms)"});
  for (std::size_t i = 0; i < rot.xs.size(); ++i)
    ta.row({util::Table::cell(rot.xs[i], 0),
            util::Table::cell(std::uint64_t(rot.work[i]))});
  std::printf("%s", ta.render().c_str());
  std::printf("fit: slope %.1f, intercept %.1f, r = %.4f (paper ~0.99)\n\n",
              rot.fit.slope, rot.fit.intercept, rot.fit.r);

  util::Table tb("Fig. 3(b): work vs number of positions (fixed irot)");
  tb.header({"nsep", "work (pair terms)"});
  for (std::size_t i = 0; i < pos.xs.size(); ++i)
    tb.row({util::Table::cell(pos.xs[i], 0),
            util::Table::cell(std::uint64_t(pos.work[i]))});
  std::printf("%s", tb.render().c_str());
  std::printf("fit: slope %.1f, intercept %.1f, r = %.4f (paper ~0.99)\n\n",
              pos.fit.slope, pos.fit.intercept, pos.fit.r);

  // The paper's 400-random-couple check (scaled down: the kernel is
  // deterministic, so a few dozen couples establish the property).
  const timing::LinearityCheck check400 =
      timing::check_linearity(bench_set, 40, 2007, params);
  std::printf("Random-couple check over %zu couples:\n", check400.couples);
  std::printf("  rotations:  min r = %.4f, mean r = %.4f\n",
              check400.min_r_rotations, check400.mean_r_rotations);
  std::printf("  positions:  min r = %.4f, mean r = %.4f\n",
              check400.min_r_positions, check400.mean_r_positions);

  bench::ShapeCheck check;
  check.expect(rot.fit.r > 0.99, "rotation sweep correlation > 0.99");
  check.expect(pos.fit.r > 0.99, "position sweep correlation > 0.99");
  check.expect(check400.min_r_rotations > 0.98,
               "every random couple linear in rotations");
  check.expect(check400.min_r_positions > 0.98,
               "every random couple linear in positions");
  check.expect(rot.relative_intercept < 0.15 &&
                   pos.relative_intercept < 0.15,
               "intercepts negligible (paper assumes b = 0)");
  check.print_summary();
  return check.exit_code();
}
