// Shared helpers for the reproduction bench binaries.
//
// Every bench prints a "paper vs measured" table and runs shape checks: the
// qualitative claims the reproduction must preserve (who wins, orderings,
// distribution skew). A failed shape check flips the process exit code so
// CI catches regressions.
#pragma once

#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "util/table.hpp"

namespace hcmd::bench {

/// Collects shape-check outcomes; exit_code() is 0 iff all passed.
class ShapeCheck {
 public:
  void expect(bool condition, const std::string& description);
  /// Convenience: measured within +-rel_tol of the paper value.
  void expect_near(double measured, double paper, double rel_tol,
                   const std::string& description);
  int exit_code() const;
  void print_summary() const;

 private:
  std::vector<std::pair<bool, std::string>> checks_;
};

/// Formats a paper-vs-measured row with relative deviation.
std::vector<std::string> compare_row(const std::string& label, double paper,
                                     double measured, int precision = 0);

/// The default Phase I campaign at the benches' standard 1/25 scale.
/// Deterministic; takes well under a second.
core::CampaignReport standard_campaign();

/// Standard workload pieces (benchmark set + calibrated Mct).
core::Workload standard_workload();

}  // namespace hcmd::bench
