// Ablation — packaging strategy and the "softness of the h parameter"
// (Section 4.2). Sweeps the target duration and compares the paper's
// floor-split against the balanced and count-minimising alternatives the
// paper mentions as sub-goals.
#include <cstdio>

#include "bench_common.hpp"
#include "packaging/packager.hpp"
#include "util/duration.hpp"

int main() {
  using namespace hcmd;
  const core::Workload w = bench::standard_workload();

  util::Table sweep("Target-duration sweep (paper floor strategy)");
  sweep.header({"h (hours)", "workunits", "mean", "small WUs",
                "small share"});
  std::uint64_t count_at_10 = 0, count_at_4 = 0;
  for (double h : {1.0, 2.0, 4.0, 6.0, 10.0, 16.0, 24.0}) {
    packaging::PackagingConfig cfg;
    cfg.target_hours = h;
    const auto stats = packaging::compute_stats(w.benchmark, *w.mct, cfg);
    sweep.row({util::Table::cell(h, 0),
               util::Table::cell(stats.workunit_count),
               util::format_compact(stats.mean_reference_seconds),
               util::Table::cell(stats.small_workunits),
               util::Table::cell(
                   static_cast<double>(stats.small_workunits) /
                       static_cast<double>(stats.workunit_count),
                   4)});
    if (h == 10.0) count_at_10 = stats.workunit_count;
    if (h == 4.0) count_at_4 = stats.workunit_count;
  }
  std::printf("%s\n", sweep.render().c_str());

  util::Table strategies("Strategy ablation at h = 10");
  strategies.header({"strategy", "workunits", "small WUs", "min WU",
                     "max WU"});
  std::uint64_t floor_small = 0, balanced_small = 0;
  std::uint64_t floor_count = 0, minimize_count = 0;
  for (auto [name, strategy] :
       {std::pair{"paper floor", packaging::SplitStrategy::kPaperFloor},
        std::pair{"balanced", packaging::SplitStrategy::kBalanced},
        std::pair{"minimize count",
                  packaging::SplitStrategy::kMinimizeCount}}) {
    packaging::PackagingConfig cfg;
    cfg.target_hours = 10.0;
    cfg.strategy = strategy;
    const auto stats = packaging::compute_stats(w.benchmark, *w.mct, cfg);
    strategies.row({name, util::Table::cell(stats.workunit_count),
                    util::Table::cell(stats.small_workunits),
                    util::format_compact(stats.min_reference_seconds),
                    util::format_compact(stats.max_reference_seconds)});
    if (strategy == packaging::SplitStrategy::kPaperFloor) {
      floor_small = stats.small_workunits;
      floor_count = stats.workunit_count;
    }
    if (strategy == packaging::SplitStrategy::kBalanced)
      balanced_small = stats.small_workunits;
    if (strategy == packaging::SplitStrategy::kMinimizeCount)
      minimize_count = stats.workunit_count;
  }
  std::printf("%s", strategies.render().c_str());

  bench::ShapeCheck check;
  check.expect(count_at_4 > 2 * count_at_10,
               "4 h packaging produces >2x the workunits of 10 h "
               "(paper: 3,599,937 vs 1,364,476)");
  check.expect(balanced_small <= floor_small,
               "balanced split reduces small workunits (the paper's "
               "'decrease the number of small workunits' sub-goal)");
  check.expect(minimize_count <= floor_count,
               "ceil split minimises the workunit count (the paper's "
               "'minimize the number of workunits' sub-goal)");
  check.print_summary();
  return check.exit_code();
}
