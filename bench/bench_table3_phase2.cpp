// Table 3 / Section 7 — evaluation of HCMD Phase II.
//
// 4,000 proteins with the docking points cut 100x: 5.66x Phase I's work,
// ~90 weeks at the Phase I rate, 59,730 VFTP to finish in 40 weeks,
// 300,430 participating members at the Phase I ratio, and ~1.3 million WCG
// members (≈1 million new volunteers) once HCMD only gets 25% of a grid
// hosting three other projects.
#include <cstdio>

#include "analysis/projection.hpp"
#include "bench_common.hpp"
#include "util/duration.hpp"

int main() {
  using namespace hcmd;

  // Feed the projection from the *measured* campaign (like the paper did),
  // falling back to Table 3's quoted inputs for the documented row.
  const core::CampaignReport r = bench::standard_campaign();

  analysis::ProjectionInput measured;
  measured.phase1_vftp = r.avg_hcmd_vftp_fullpower;
  measured.phase1_weeks = 16.0;
  measured.phase1_cpu_seconds =
      measured.phase1_vftp * measured.phase1_weeks * util::kSecondsPerWeek;
  const analysis::ProjectionResult from_sim =
      analysis::project_phase2(measured);

  const analysis::ProjectionResult from_paper = analysis::project_phase2();

  std::printf("Table 3: evaluation of the HCMD phase II\n\n");
  util::Table table("Projection");
  table.header({"quantity", "paper", "from paper inputs",
                "from simulated Phase I"});
  table.row({"cpu time (s)", "1,444,998,719,637",
             util::Table::cell(std::uint64_t(from_paper.phase2_cpu_seconds)),
             util::Table::cell(std::uint64_t(from_sim.phase2_cpu_seconds))});
  table.row({"work ratio (phase II / I)", "5.66",
             util::Table::cell(from_paper.work_ratio, 3),
             util::Table::cell(from_sim.work_ratio, 3)});
  table.row({"weeks at phase-I rate", "90",
             util::Table::cell(from_paper.weeks_at_phase1_rate, 1),
             util::Table::cell(from_sim.weeks_at_phase1_rate, 1)});
  table.row({"VFTP for 40 weeks", "59,730",
             util::Table::cell(std::uint64_t(from_paper.vftp_needed)),
             util::Table::cell(std::uint64_t(from_sim.vftp_needed))});
  table.row({"members (project ratio)", "300,430",
             util::Table::cell(std::uint64_t(
                 from_paper.members_needed_project)),
             util::Table::cell(std::uint64_t(
                 from_sim.members_needed_project))});
  table.row({"WCG members at 25% share", "~1,300,000",
             util::Table::cell(std::uint64_t(from_paper.members_needed_grid)),
             util::Table::cell(std::uint64_t(from_sim.members_needed_grid))});
  table.row({"new volunteers needed", "~1,000,000",
             util::Table::cell(std::uint64_t(
                 from_paper.new_volunteers_needed)),
             util::Table::cell(std::uint64_t(
                 from_sim.new_volunteers_needed))});
  std::printf("%s", table.render().c_str());

  bench::ShapeCheck check;
  check.expect_near(from_paper.work_ratio, 5.669, 0.001, "work ratio");
  check.expect_near(from_paper.phase2_cpu_seconds, 1.444998719637e12, 0.001,
                    "phase II CPU seconds");
  check.expect_near(from_paper.weeks_at_phase1_rate, 90.0, 0.02,
                    "90 weeks at the phase-I rate");
  check.expect_near(from_paper.vftp_needed, 59'730.0, 0.01,
                    "59,730 VFTP for 40 weeks");
  check.expect_near(from_paper.members_needed_project, 300'430.0, 0.01,
                    "Table 3 members");
  check.expect_near(from_paper.members_needed_grid, 1.3e6, 0.05,
                    "1.3 M grid members at 25% share");
  check.expect_near(from_paper.new_volunteers_needed, 1.0e6, 0.08,
                    "~1 M new volunteers");
  // The simulated Phase I supports the same conclusion within tolerance.
  check.expect_near(from_sim.vftp_needed, 59'730.0, 0.25,
                    "projection from the simulated campaign agrees");
  check.print_summary();
  return check.exit_code();
}
