// Figure 6(a) — virtual full-time processors during the HCMD project.
//
// The full Phase I campaign DES: the weekly HCMD and whole-grid VFTP
// series, the three phases (control / prioritization / full power), and the
// paper's averages — 54,947 grid-wide, 16,450 HCMD over the whole period,
// 26,248 during full power.
#include <cstdio>

#include "bench_common.hpp"
#include "util/ascii_plot.hpp"

int main() {
  using namespace hcmd;
  const core::CampaignReport r = bench::standard_campaign();

  std::printf("Figure 6(a): HCMD project on World Community Grid "
              "(simulated at 1/%d scale, rescaled)\n\n",
              static_cast<int>(1.0 / r.scale + 0.5));

  util::Table weekly("Weekly virtual full-time processors");
  weekly.header({"week", "HCMD VFTP", "WCG VFTP", "HCMD share"});
  for (std::size_t i = 0; i < r.hcmd_vftp_weekly.size(); ++i) {
    const double share = r.wcg_vftp_weekly[i] > 0
                             ? r.hcmd_vftp_weekly[i] / r.wcg_vftp_weekly[i]
                             : 0.0;
    weekly.row({util::Table::cell(static_cast<int>(i)),
                util::Table::cell(std::uint64_t(r.hcmd_vftp_weekly[i])),
                util::Table::cell(std::uint64_t(r.wcg_vftp_weekly[i])),
                util::Table::cell(share, 3)});
  }
  std::printf("%s\n", weekly.render().c_str());
  std::printf("HCMD VFTP curve:\n%s\n",
              util::line_chart(r.hcmd_vftp_weekly, 70, 12).c_str());

  util::Table summary("Paper comparison");
  summary.header({"quantity", "paper", "measured", "dev"});
  summary.row(bench::compare_row("avg WCG VFTP (whole period)", 54'947.0,
                                 r.avg_wcg_vftp_whole));
  summary.row(bench::compare_row("avg HCMD VFTP (whole period)", 16'450.0,
                                 r.avg_hcmd_vftp_whole));
  summary.row(bench::compare_row("avg HCMD VFTP (full power)", 26'248.0,
                                 r.avg_hcmd_vftp_fullpower));
  summary.row(bench::compare_row("campaign length (weeks)", 26.0,
                                 r.completion_weeks, 1));
  std::printf("%s", summary.render().c_str());

  bench::ShapeCheck check;
  check.expect(r.completed, "campaign completes");
  check.expect_near(r.completion_weeks, 26.0, 0.15, "26-week campaign");
  check.expect_near(r.avg_wcg_vftp_whole, 54'947.0, 0.10,
                    "grid-wide VFTP average");
  check.expect_near(r.avg_hcmd_vftp_whole, 16'450.0, 0.20,
                    "HCMD whole-period VFTP average");
  check.expect_near(r.avg_hcmd_vftp_fullpower, 26'248.0, 0.20,
                    "HCMD full-power VFTP average");
  // Three phases: tiny share early, ~45 % in the plateau.
  const std::size_t n = r.hcmd_vftp_weekly.size();
  check.expect(n > 15, "enough weeks to see the phases");
  check.expect(r.hcmd_vftp_weekly[2] / r.wcg_vftp_weekly[2] < 0.10,
               "control period: HCMD gets a sliver of the grid");
  const std::size_t mid = n / 2;
  const double mid_share = r.hcmd_vftp_weekly[mid] / r.wcg_vftp_weekly[mid];
  check.expect(mid_share > 0.35 && mid_share < 0.55,
               "full power: HCMD share near 45%");
  check.expect(r.avg_hcmd_vftp_fullpower > 1.3 * r.avg_hcmd_vftp_whole,
               "full-power average well above whole-period average");
  check.print_summary();
  return check.exit_code();
}
