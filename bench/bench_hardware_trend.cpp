// Section 8 — observing the desktop-hardware trend through credit.
//
// The paper expects the points system to "allow us to observe the trend
// toward more powerful processors in desktop computers". The device model
// improves cohorts at 10 %/year; this bench checks the credit-based
// estimator recovers that rate two ways:
//   * between campaigns: the Phase I fleet (Dec 2006) vs the same campaign
//     started 18 months later — a two-point estimate;
//   * within a long campaign: the weekly credit/runtime ratio drifts up as
//     churn replaces old devices with newer ones.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "analysis/trend.hpp"
#include "bench_common.hpp"
#include "util/calendar.hpp"
#include "util/duration.hpp"

int main() {
  using namespace hcmd;

  // --- two campaigns, 18 months apart ---
  core::CampaignConfig phase1;
  phase1.scale = 0.02;
  const core::CampaignReport early = core::run_campaign(phase1);

  core::CampaignConfig later = phase1;
  later.start_date = util::CivilDate{2008, 6, 19};
  // Same snapshots shifted is unnecessary; drop them.
  later.snapshots.clear();
  const core::CampaignReport late = core::run_campaign(later);

  auto fleet_score = [](const core::CampaignReport& r) {
    double runtime = 0.0;
    for (double v : r.hcmd_vftp_weekly) runtime += v * util::kSecondsPerWeek;
    return analysis::mean_benchmark_score(r.total_credit, runtime);
  };
  const double score_early = fleet_score(early);
  const double score_late = fleet_score(late);
  const double years_apart =
      static_cast<double>(util::days_between(phase1.start_date,
                                             later.start_date)) /
      365.0;
  const double two_point =
      analysis::annualized_improvement(score_early, score_late, years_apart);

  std::printf("Fleet mean benchmark score (credit / runtime):\n");
  std::printf("  campaign starting %s : %.4f\n",
              util::format_date(phase1.start_date).c_str(), score_early);
  std::printf("  campaign starting %s : %.4f\n",
              util::format_date(later.start_date).c_str(), score_late);
  std::printf("  two-point annualised improvement: %.1f%%  (device model: "
              "10%%/year)\n\n",
              100.0 * two_point);

  // --- within-campaign drift (full-power plateau only: the campaign's
  // first and last weeks carry metering boundary artefacts — runtime is
  // metered as it is crunched, credit when the result is reported) ---
  std::vector<double> runtime_weekly, credit_weekly;
  const std::size_t first = 9;
  const std::size_t last =
      std::min<std::size_t>(early.hcmd_vftp_weekly.size(), 20);
  for (std::size_t i = first; i < last; ++i) {
    runtime_weekly.push_back(early.hcmd_vftp_weekly[i] *
                             util::kSecondsPerWeek);
    credit_weekly.push_back(early.credit_weekly[i]);
  }
  const analysis::HardwareTrend within =
      analysis::estimate_trend(credit_weekly, runtime_weekly);
  std::printf("Within-campaign weekly score fit (weeks %zu-%zu): r = %.3f, "
              "annualised drift %.1f%%\n",
              first, last - 1, within.log_fit.r,
              100.0 * within.annual_improvement);
  std::printf("(Within a single 26-week campaign the cohort trend is below "
              "the noise floor —\n only ~40%% of the fleet churns, each "
              "replacement barely newer. That is exactly\n why Section 8 "
              "proposes points for long-horizon observation: the cross-"
              "campaign\n estimate above carries the signal.)\n");

  bench::ShapeCheck check;
  check.expect(score_late > score_early,
               "later fleets crunch faster (the trend exists)");
  check.expect_near(two_point, 0.10, 0.45,
                    "two-point estimate recovers the 10%/year cohort rate");
  check.expect(std::abs(within.annual_improvement) < 0.10,
               "within-campaign drift stays below the cohort rate (a single "
               "campaign is too short to resolve the trend)");
  check.print_summary();
  return check.exit_code();
}
