// Section 8 — points-based capacity estimation (the paper's future work,
// implemented).
//
// The paper notes that run-time VFTP depends on the middleware's accounting
// (UD counts wall-clock; BOINC counts CPU time) and proposes estimating
// capacity from *points awarded* — runtime x an agent-side benchmark —
// which "should reduce the differences between each platform [and] be more
// middleware independent". This bench runs the identical campaign under
// both agents and compares the two estimators.
#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace hcmd;

  core::CampaignConfig ud_config;
  ud_config.scale = 0.02;
  ud_config.devices.accounting = volunteer::AccountingMode::kUdWallClock;
  const core::CampaignReport ud = core::run_campaign(ud_config);

  core::CampaignConfig boinc_config = ud_config;
  boinc_config.devices.accounting = volunteer::AccountingMode::kBoincCpuTime;
  const core::CampaignReport boinc = core::run_campaign(boinc_config);

  // Ground truth: reference processors implied by the useful work.
  const double truth_ud = ud.speeddown.useful_reference_seconds / ud.scale /
                          (ud.completion_weeks * util::kSecondsPerWeek);
  const double truth_boinc =
      boinc.speeddown.useful_reference_seconds / boinc.scale /
      (boinc.completion_weeks * util::kSecondsPerWeek);

  util::Table table("Run-time VFTP vs credit-based estimate (whole period)");
  table.header({"estimator", "UD agent (phase I)", "BOINC agent (phase II)",
                "UD/BOINC ratio"});
  auto ratio = [](double a, double b) {
    return util::Table::cell(b != 0.0 ? a / b : 0.0, 2);
  };
  table.row({"run-time VFTP (the paper's phase-I metric)",
             util::Table::cell(std::uint64_t(ud.avg_hcmd_vftp_whole)),
             util::Table::cell(std::uint64_t(boinc.avg_hcmd_vftp_whole)),
             ratio(ud.avg_hcmd_vftp_whole, boinc.avg_hcmd_vftp_whole)});
  table.row({"credit-based reference processors",
             util::Table::cell(std::uint64_t(
                 ud.credit_reference_processors)),
             util::Table::cell(std::uint64_t(
                 boinc.credit_reference_processors)),
             ratio(ud.credit_reference_processors,
                   boinc.credit_reference_processors)});
  table.row({"true useful reference processors",
             util::Table::cell(std::uint64_t(truth_ud)),
             util::Table::cell(std::uint64_t(truth_boinc)),
             ratio(truth_ud, truth_boinc)});
  std::printf("%s\n", table.render().c_str());

  std::printf("Total credit granted: %.3g (UD) vs %.3g (BOINC)\n",
              ud.total_credit, boinc.total_credit);
  std::printf(
      "\nReading: the run-time metric disagrees across middleware by the "
      "accounting gap\n(UD wall-clock inflates run time by throttle and "
      "contention), while the credit\nestimate agrees across agents and "
      "tracks the true delivered capacity (it sits\nslightly above truth "
      "because credit is also claimed for redundant and re-done\nwork).\n");

  bench::ShapeCheck check;
  const double runtime_gap =
      ud.avg_hcmd_vftp_whole / boinc.avg_hcmd_vftp_whole;
  const double credit_gap =
      ud.credit_reference_processors / boinc.credit_reference_processors;
  check.expect(runtime_gap > 1.8,
               "run-time VFTP is strongly middleware dependent");
  check.expect(credit_gap > 0.8 && credit_gap < 1.25,
               "credit estimate agrees across middleware (Section 8 claim)");
  check.expect(ud.credit_reference_processors > truth_ud &&
                   ud.credit_reference_processors < 2.0 * truth_ud,
               "credit tracks true capacity (within the redundancy and "
               "re-computation overhead)");
  check.expect(boinc.completed && ud.completed, "both campaigns complete");
  check.print_summary();
  return check.exit_code();
}
