#include "bench_common.hpp"

#include <cmath>
#include <cstdio>

namespace hcmd::bench {

void ShapeCheck::expect(bool condition, const std::string& description) {
  checks_.emplace_back(condition, description);
}

void ShapeCheck::expect_near(double measured, double paper, double rel_tol,
                             const std::string& description) {
  const bool ok =
      paper != 0.0 && std::abs(measured - paper) <= rel_tol * std::abs(paper);
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s (paper %.4g, measured %.4g, tol %.0f%%)",
                description.c_str(), paper, measured, rel_tol * 100.0);
  checks_.emplace_back(ok, buf);
}

int ShapeCheck::exit_code() const {
  for (const auto& [ok, desc] : checks_)
    if (!ok) return 1;
  return 0;
}

void ShapeCheck::print_summary() const {
  std::printf("\nShape checks:\n");
  for (const auto& [ok, desc] : checks_)
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", desc.c_str());
}

std::vector<std::string> compare_row(const std::string& label, double paper,
                                     double measured, int precision) {
  char p[48], m[48], d[32];
  std::snprintf(p, sizeof(p), "%.*f", precision, paper);
  std::snprintf(m, sizeof(m), "%.*f", precision, measured);
  if (paper != 0.0) {
    std::snprintf(d, sizeof(d), "%+.1f%%", 100.0 * (measured - paper) / paper);
  } else {
    std::snprintf(d, sizeof(d), "n/a");
  }
  return {label, p, m, d};
}

core::CampaignReport standard_campaign() {
  core::CampaignConfig config;
  // 1/25 scale: doubled from the seed's 1/50 after the pooled-arena DES
  // rewrite — the finer fleet costs the benches well under a second and
  // halves the scale-up noise in every rescaled weekly series.
  config.scale = 0.04;
  return core::run_campaign(config);
}

core::Workload standard_workload() {
  return core::build_workload(core::CampaignConfig{});
}

}  // namespace hcmd::bench
