// Figure 2 — "NsepMax distribution": the number of starting positions each
// of the 168 proteins generates. The paper's observations: most proteins
// have fewer than 3000 starting positions; one has more than 8000; and the
// set generates 49,481,544 candidate workunits in total.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "util/ascii_plot.hpp"
#include "util/stats.hpp"

int main() {
  using namespace hcmd;
  const core::Workload w = bench::standard_workload();
  const auto& bench_set = w.benchmark;

  std::vector<double> nsep(bench_set.nsep.begin(), bench_set.nsep.end());
  util::Histogram hist(0.0, 9000.0, 18);
  for (double n : nsep) hist.add(n);

  std::printf("Figure 2: Nsep distribution over the %zu-protein set\n\n",
              bench_set.proteins.size());
  std::printf("%s\n",
              util::histogram_chart(hist, 60, "proteins").c_str());

  const util::Summary s = util::summarize(nsep);
  const auto under3000 = static_cast<double>(
      std::count_if(nsep.begin(), nsep.end(), [](double n) { return n < 3000; }));

  util::Table table("Paper anchor points");
  table.header({"quantity", "paper", "measured", "dev"});
  table.row(bench::compare_row("total candidate workunits (168 * sum Nsep)",
                               49'481'544.0,
                               static_cast<double>(
                                   bench_set.candidate_workunits())));
  table.row(bench::compare_row("proteins with Nsep < 3000 (\"most\")", 160.0,
                               under3000));
  table.row(bench::compare_row("max Nsep (single >8000 outlier)", 8400.0,
                               s.max));
  std::printf("%s", table.render().c_str());
  std::printf("\nNsep summary: mean %.0f, median %.0f, min %.0f, max %.0f\n",
              s.mean, s.median, s.min, s.max);

  bench::ShapeCheck check;
  check.expect_near(static_cast<double>(bench_set.candidate_workunits()),
                    49'481'544.0, 0.04, "candidate workunit identity");
  check.expect(under3000 >= 0.8 * static_cast<double>(nsep.size()),
               "most proteins below 3000 starting positions");
  check.expect(s.max > 8000.0, "one protein above 8000 starting positions");
  check.expect(std::count_if(nsep.begin(), nsep.end(),
                             [](double n) { return n > 8000; }) <= 3,
               "the >8000 tail is a single outlier (not a cluster)");
  check.print_summary();
  return check.exit_code();
}
