// Table 1 — statistics of the computation time matrix Mct, measured by
// replaying the Grid'5000 calibration campaign (Section 4.1): one job per
// ordered couple (168^2 = 28,224 jobs) on the 640-processor slice.
//
// Paper values: average 671 s, standard deviation 968, min 6, max 46,347,
// median 384; total cross-docking time 1,488:237:19:45:54 (y:d:h:m:s); and
// "10 proteins represent 30% of the total processing time".
#include <cstdio>

#include "bench_common.hpp"
#include "dedicated/calibration.hpp"
#include "util/duration.hpp"

int main() {
  using namespace hcmd;
  const core::Workload w = bench::standard_workload();

  const auto outcome = dedicated::run_calibration(
      w.benchmark, *w.cost_model, dedicated::grid5000_calibration_slice(),
      dedicated::ListPolicy::kLongestProcessingTime);
  const util::Summary s = outcome.matrix.summary();

  std::printf("Table 1: statistics of the computation time matrix (seconds)\n\n");
  util::Table table("Mct statistics, %d jobs");
  table.header({"statistic", "paper", "measured", "dev"});
  table.row(bench::compare_row("average", 671.0, s.mean));
  table.row(bench::compare_row("standard deviation", 968.04, s.stddev));
  table.row(bench::compare_row("min", 6.0, s.min, 1));
  table.row(bench::compare_row("max", 46'347.0, s.max));
  table.row(bench::compare_row("median", 384.0, s.median));
  std::printf("%s\n", table.render().c_str());

  const double total = outcome.matrix.total_reference_seconds(w.benchmark);
  std::printf("Formula (1) total: %s  (paper 1488:237:19:45:54)\n",
              util::format_ydhms(total).c_str());
  const double top10 = outcome.matrix.top_k_receptor_share(w.benchmark, 10);
  std::printf("Top-10 receptor share of total time: %.1f%% (paper ~30%%)\n\n",
              100.0 * top10);

  std::printf("Calibration campaign on Grid'5000 (%u processors):\n",
              outcome.batch.processors);
  std::printf("  jobs      : %.0f  (paper 28,224)\n", outcome.jobs);
  std::printf("  makespan  : %s  (paper ~1 day)\n",
              util::format_compact(outcome.batch.makespan).c_str());
  std::printf("  cpu time  : %s  (paper \"more than 73 days\")\n",
              util::format_compact(outcome.batch.cpu_seconds).c_str());
  std::printf("  utilization: %.1f%%\n", 100.0 * outcome.batch.utilization);

  bench::ShapeCheck check;
  check.expect_near(s.mean, 671.0, 0.02, "Table 1 average");
  check.expect_near(s.stddev, 968.0, 0.25, "Table 1 standard deviation");
  check.expect_near(s.median, 384.0, 0.25, "Table 1 median");
  check.expect(s.min < 30.0, "Table 1 min is a few seconds");
  check.expect(s.max > 15'000.0, "Table 1 max is tens of thousands");
  check.expect(s.mean > s.median, "distribution is right-skewed");
  check.expect_near(total, util::parse_ydhms("1488:237:19:45:54"), 0.10,
                    "formula (1) total near 1,488 years");
  check.expect(top10 > 0.25 && top10 < 0.55,
               "a handful of proteins dominates total cost");
  check.expect(outcome.batch.makespan < 2.0 * util::kSecondsPerDay,
               "calibration fits in ~a day on 640 processors");
  check.expect(outcome.batch.cpu_seconds > 73.0 * util::kSecondsPerDay,
               "calibration consumes more than 73 CPU-days");
  check.print_summary();
  return check.exit_code();
}
