#include "bench_memory.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#if defined(__has_include)
#if __has_include(<malloc.h>)
#include <malloc.h>
#define HCMD_BENCH_HAVE_USABLE_SIZE 1
#endif
#endif

namespace {

std::atomic<std::uint64_t> g_allocations{0};
std::atomic<std::uint64_t> g_bytes_allocated{0};
std::atomic<std::uint64_t> g_live_bytes{0};
std::atomic<std::uint64_t> g_peak_live_bytes{0};

std::uint64_t usable(void* p, std::size_t requested) {
#ifdef HCMD_BENCH_HAVE_USABLE_SIZE
  return static_cast<std::uint64_t>(malloc_usable_size(p));
#else
  (void)p;
  return static_cast<std::uint64_t>(requested);
#endif
}

void note_alloc(void* p, std::size_t requested) {
  const std::uint64_t n = usable(p, requested);
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes_allocated.fetch_add(n, std::memory_order_relaxed);
  const std::uint64_t live =
      g_live_bytes.fetch_add(n, std::memory_order_relaxed) + n;
  std::uint64_t peak = g_peak_live_bytes.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak_live_bytes.compare_exchange_weak(
             peak, live, std::memory_order_relaxed)) {
  }
}

void note_free(void* p) {
  if (!p) return;
#ifdef HCMD_BENCH_HAVE_USABLE_SIZE
  g_live_bytes.fetch_sub(static_cast<std::uint64_t>(malloc_usable_size(p)),
                         std::memory_order_relaxed);
#endif
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = std::malloc(size)) {
    note_alloc(p, size);
    return p;
  }
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* p = std::malloc(size);
  if (p) note_alloc(p, size);
  return p;
}

void* operator new(std::size_t size, std::align_val_t align) {
  const auto a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) & ~(a - 1);
  if (void* p = std::aligned_alloc(a, rounded)) {
    note_alloc(p, rounded);
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept {
  note_free(p);
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  note_free(p);
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  note_free(p);
  std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  note_free(p);
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  note_free(p);
  std::free(p);
}

namespace hcmd::bench::mem {

HeapStats heap_stats() {
  HeapStats s;
  s.allocations = g_allocations.load(std::memory_order_relaxed);
  s.bytes_allocated = g_bytes_allocated.load(std::memory_order_relaxed);
  s.live_bytes = g_live_bytes.load(std::memory_order_relaxed);
  s.peak_live_bytes = g_peak_live_bytes.load(std::memory_order_relaxed);
  return s;
}

void reset_peak() {
  g_peak_live_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
}

std::uint64_t os_peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::uint64_t kib = 0;
  while (std::fgets(line, sizeof(line), f)) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kib = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
}

}  // namespace hcmd::bench::mem
