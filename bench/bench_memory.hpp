// Heap and RSS instrumentation for the bench binaries.
//
// bench_memory.cpp replaces the global allocation functions with counting
// wrappers, so any bench that links it (by referencing these functions) can
// report allocation counts and a resettable live-heap high-water mark next
// to its throughput numbers. This is how BM_CampaignWeek and the scale
// sweep print memory alongside time: the OS peak RSS (VmHWM) is monotone
// over the process, so per-benchmark memory comparisons use the heap peak,
// which reset_peak() rebases to the current live size.
#pragma once

#include <cstdint>

namespace hcmd::bench::mem {

struct HeapStats {
  std::uint64_t allocations = 0;      ///< cumulative operator-new calls
  std::uint64_t bytes_allocated = 0;  ///< cumulative usable bytes
  std::uint64_t live_bytes = 0;       ///< currently allocated usable bytes
  std::uint64_t peak_live_bytes = 0;  ///< high-water since last reset_peak()
};

HeapStats heap_stats();

/// Rebases the live-heap high-water mark to the current live size; call
/// before the measured region.
void reset_peak();

/// OS peak RSS (VmHWM) in bytes; 0 where /proc is unavailable. Monotone
/// over the whole process lifetime.
std::uint64_t os_peak_rss_bytes();

}  // namespace hcmd::bench::mem
