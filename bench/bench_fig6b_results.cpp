// Figure 6(b) — number of results received during the HCMD project, and the
// useful/redundant split: "only 73% are useful results"; redundancy factor
// 1.37 (5,418,010 disclosed vs 3,936,010 effective results).
#include <cstdio>

#include "bench_common.hpp"
#include "util/ascii_plot.hpp"

int main() {
  using namespace hcmd;
  const core::CampaignReport r = bench::standard_campaign();

  std::printf("Figure 6(b): results received per week (rescaled to full "
              "size)\n\n");
  util::Table weekly("Weekly results");
  weekly.header({"week", "received", "useful", "useful share"});
  for (std::size_t i = 0; i < r.results_received_weekly.size(); ++i) {
    const double rec = r.results_received_weekly[i];
    const double useful = r.results_useful_weekly[i];
    weekly.row({util::Table::cell(static_cast<int>(i)),
                util::Table::cell(std::uint64_t(rec)),
                util::Table::cell(std::uint64_t(useful)),
                util::Table::cell(rec > 0 ? useful / rec : 0.0, 3)});
  }
  std::printf("%s\n", weekly.render().c_str());
  std::printf("Received-results curve:\n%s\n",
              util::line_chart(r.results_received_weekly, 70, 12).c_str());

  util::Table summary("Paper comparison");
  summary.header({"quantity", "paper", "measured", "dev"});
  summary.row(bench::compare_row("results received (disclosed)", 5'418'010.0,
                                 r.results_received_rescaled()));
  summary.row(bench::compare_row("effective (useful) results", 3'936'010.0,
                                 r.results_useful_rescaled()));
  summary.row(bench::compare_row("redundancy factor", 1.37,
                                 r.redundancy_factor, 3));
  summary.row(bench::compare_row("useful fraction", 0.73, r.useful_fraction,
                                 3));
  std::printf("%s", summary.render().c_str());

  std::printf("\nLifecycle breakdown (scaled counts):\n");
  std::printf("  sent         : %s\n",
              util::with_commas(r.counters.results_sent).c_str());
  std::printf("  received     : %s\n",
              util::with_commas(r.counters.results_received).c_str());
  std::printf("  useful       : %s\n",
              util::with_commas(r.counters.results_valid).c_str());
  std::printf("  quorum extra : %s\n",
              util::with_commas(r.counters.results_quorum_extra).c_str());
  std::printf("  redundant    : %s\n",
              util::with_commas(r.counters.results_redundant).c_str());
  std::printf("  invalid      : %s\n",
              util::with_commas(r.counters.results_invalid).c_str());
  std::printf("  timed out    : %s\n",
              util::with_commas(r.counters.results_timed_out).c_str());

  bench::ShapeCheck check;
  check.expect_near(r.redundancy_factor, 1.37, 0.10, "redundancy factor");
  check.expect_near(r.useful_fraction, 0.73, 0.10, "useful fraction");
  check.expect_near(r.results_received_rescaled(), 5'418'010.0, 0.20,
                    "total results received");
  // Note: the paper's 3,936,010 effective results exceeds its own h = 4
  // workunit count (3,599,937), so the production packaging must have been
  // slightly finer than Fig. 4(b)'s; hence the wider gate here.
  check.expect_near(r.results_useful_rescaled(), 3'936'010.0, 0.15,
                    "effective results");
  check.expect(r.counters.results_invalid > 0 &&
                   r.counters.results_redundant > 0,
               "both rejection paths exercised");
  check.expect(r.counters.results_received > r.counters.results_valid,
               "redundant computing visible");
  check.print_summary();
  return check.exit_code();
}
