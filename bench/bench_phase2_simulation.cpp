// Section 7, simulated — does the Phase II projection hold up dynamically?
//
// Table 3 is a closed-form extrapolation assuming Phase-I-era efficiency;
// this bench actually *runs* Phase II (BOINC agents, 25 % grid share,
// 5.66x the work) and tests three scenarios:
//   * organic mid-2008 grid, Phase-I-era hardware: the paper's ~90-week
//     "if it behaves like for the first step" regime;
//   * recruited grid (59,730 VFTP at a 25 % share ~ 1.3 M members),
//     Phase-I-era hardware: the paper's ~40-week target;
//   * recruited grid with the hardware-turnover trend left on: Phase II
//     beats the projection — the effect Section 8 anticipates ("observe
//     the trend toward more powerful processors in desktop computers").
#include <cstdio>

#include "bench_common.hpp"
#include "core/phase2.hpp"
#include "util/duration.hpp"

int main() {
  using namespace hcmd;

  core::Phase2Scenario organic_frozen;
  organic_frozen.grid_vftp = core::organic_grid_vftp_2008();
  organic_frozen.freeze_hardware_at_phase1 = true;
  organic_frozen.max_weeks = 160.0;
  organic_frozen.scale = 1.0 / 400.0;

  core::Phase2Scenario recruited_frozen = organic_frozen;
  recruited_frozen.grid_vftp = 59'730.0 / recruited_frozen.grid_share;
  recruited_frozen.max_weeks = 80.0;

  core::Phase2Scenario recruited_trend = recruited_frozen;
  recruited_trend.freeze_hardware_at_phase1 = false;

  std::printf("Phase II simulation (workload calibrated to %.2fx the Phase "
              "I total; BOINC agents; %.0f%% grid share)\n\n",
              organic_frozen.work_ratio,
              100.0 * organic_frozen.grid_share);

  struct Row {
    const char* name;
    double grid_vftp;
    double paper_weeks;  // 0 = no paper counterpart
    core::CampaignReport report;
  };
  Row rows[] = {
      {"organic 2008 grid, phase-I hardware", organic_frozen.grid_vftp,
       90.0, core::run_campaign(core::make_phase2_config(organic_frozen))},
      {"recruited grid (~1.3M members), phase-I hardware",
       recruited_frozen.grid_vftp, 40.0,
       core::run_campaign(core::make_phase2_config(recruited_frozen))},
      {"recruited grid, hardware trend on", recruited_trend.grid_vftp, 0.0,
       core::run_campaign(core::make_phase2_config(recruited_trend))},
  };

  util::Table table("Completion of Phase II");
  table.header({"scenario", "grid VFTP", "HCMD ref-procs",
                "projection (weeks)", "simulated (weeks)"});
  for (const auto& row : rows) {
    const double ref_procs =
        row.report.speeddown.useful_reference_seconds / row.report.scale /
        (row.report.completion_weeks * util::kSecondsPerWeek);
    table.row({row.name, util::Table::cell(std::uint64_t(row.grid_vftp)),
               util::Table::cell(std::uint64_t(ref_procs)),
               row.paper_weeks > 0 ? util::Table::cell(row.paper_weeks, 0)
                                   : "-",
               row.report.completed
                   ? util::Table::cell(row.report.completion_weeks, 1)
                   : (">" +
                      util::Table::cell(row.report.completion_weeks, 0))});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Phase II reference total: %s (5.66x Phase I)\n",
              util::format_ydhms(
                  rows[0].report.total_reference_seconds).c_str());
  std::printf("Workunits (h = 4 packaging): %s\n\n",
              util::with_commas(rows[0].report.full_workunit_count).c_str());

  bench::ShapeCheck check;
  for (const auto& row : rows)
    check.expect(row.report.completed,
                 std::string("completes: ") + row.name);
  check.expect_near(rows[0].report.total_reference_seconds,
                    5.669 * 1489.0 * util::kSecondsPerYear, 0.02,
                    "workload calibrated to the Phase II total");
  check.expect_near(rows[0].report.completion_weeks, 90.0, 0.20,
                    "organic grid + phase-I hardware lands in the ~90-week "
                    "regime");
  check.expect_near(rows[1].report.completion_weeks, 40.0, 0.20,
                    "recruited grid + phase-I hardware meets the 40-week "
                    "target");
  check.expect(rows[2].report.completion_weeks <
                   0.95 * rows[1].report.completion_weeks,
               "hardware turnover beats the projection (Section 8's "
               "anticipated trend)");
  check.expect(rows[0].report.completion_weeks >
                   1.8 * rows[1].report.completion_weeks,
               "recruitment shortens Phase II by roughly the projected "
               "factor");
  check.print_summary();
  return check.exit_code();
}
