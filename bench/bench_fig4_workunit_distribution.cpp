// Figure 4 — workunit distributions produced by the Section 4.2 packaging.
//
// (a) target 10 h  -> 1,364,476 workunits;
// (b) target  4 h  -> 3,599,937 workunits;
// and the count rises as the wanted execution time shrinks.
#include <cstdio>

#include "bench_common.hpp"
#include "packaging/packager.hpp"
#include "util/ascii_plot.hpp"
#include "util/duration.hpp"

int main() {
  using namespace hcmd;
  const core::Workload w = bench::standard_workload();

  bench::ShapeCheck check;
  std::uint64_t previous = ~0ull;
  struct Case {
    double hours;
    double paper_count;  // 0 when the paper gives no number
  };
  for (const Case c : {Case{10.0, 1'364'476.0}, Case{4.0, 3'599'937.0},
                       Case{16.0, 0.0}, Case{2.0, 0.0}}) {
    packaging::PackagingConfig cfg;
    cfg.target_hours = c.hours;
    const packaging::PackagingStats stats = packaging::compute_stats(
        w.benchmark, *w.mct, cfg, 36, 1.5 * c.hours);

    std::printf(
        "WantedWuExecTime = %.0f h: Nb wu = %s (mean %s, min %s, max %s, "
        "small %s)\n",
        c.hours, util::with_commas(stats.workunit_count).c_str(),
        util::format_compact(stats.mean_reference_seconds).c_str(),
        util::format_compact(stats.min_reference_seconds).c_str(),
        util::format_compact(stats.max_reference_seconds).c_str(),
        util::with_commas(stats.small_workunits).c_str());
    if (c.hours == 10.0 || c.hours == 4.0) {
      std::printf("%s\n",
                  util::histogram_chart(stats.duration_hours, 56,
                                        "workunits").c_str());
    }
    if (c.paper_count > 0.0) {
      check.expect_near(static_cast<double>(stats.workunit_count),
                        c.paper_count, 0.06,
                        "workunit count at h = " +
                            std::to_string(static_cast<int>(c.hours)));
    }
    if (previous != ~0ull) {
      check.expect(stats.workunit_count > previous ||
                       c.hours > 4.0,  // the 16 h case resets the ladder
                   "count grows as the target shrinks");
    }
    previous = stats.workunit_count;
  }

  // Invariant: the packaged total equals formula (1) regardless of h.
  packaging::PackagingConfig cfg10, cfg4;
  cfg10.target_hours = 10.0;
  cfg4.target_hours = 4.0;
  const double t10 =
      packaging::compute_stats(w.benchmark, *w.mct, cfg10)
          .total_reference_seconds;
  const double t4 = packaging::compute_stats(w.benchmark, *w.mct, cfg4)
                        .total_reference_seconds;
  std::printf("Packaged total at h=10: %s; at h=4: %s (must match)\n",
              util::format_ydhms(t10).c_str(),
              util::format_ydhms(t4).c_str());
  check.expect(std::abs(t10 - t4) < 1e-6 * t10,
               "packaging conserves total work");

  check.print_summary();
  return check.exit_code();
}
