// Figure 8 — distribution of real workunit run times on volunteer devices.
//
// Workunits packaged to take ~3-4 h on the reference processor (average
// 3 h 18 m 47 s) actually report ~13 h of UD-agent run time on World
// Community Grid — the speed-down the paper analyses in Section 6.
#include <cstdio>

#include "bench_common.hpp"
#include "util/ascii_plot.hpp"
#include "util/duration.hpp"

int main() {
  using namespace hcmd;
  const core::CampaignReport r = bench::standard_campaign();

  std::printf("Figure 8: real workunit run-time distribution (UD-agent "
              "accounting)\n\n");
  std::printf("%s\n",
              util::histogram_chart(r.runtime_hours_hist, 56,
                                    "results").c_str());

  util::Table table("Paper comparison");
  table.header({"quantity", "paper", "measured", "dev"});
  table.row(bench::compare_row(
      "packaged mean (reference hours)",
      (3.0 * 3600 + 18 * 60 + 47) / 3600.0,
      r.nominal_wu_mean_seconds / util::kSecondsPerHour, 2));
  table.row(bench::compare_row("observed mean run time (hours)", 13.0,
                               r.runtime_summary.mean /
                                   util::kSecondsPerHour, 2));
  const double ratio =
      r.runtime_summary.mean / r.nominal_wu_mean_seconds;
  table.row(bench::compare_row("observed / packaged ratio", 3.96, ratio, 2));
  std::printf("%s", table.render().c_str());
  std::printf("\nRun-time summary: mean %s, median %s, min %s, max %s over "
              "%s results\n",
              util::format_compact(r.runtime_summary.mean).c_str(),
              util::format_compact(r.runtime_summary.median).c_str(),
              util::format_compact(r.runtime_summary.min).c_str(),
              util::format_compact(r.runtime_summary.max).c_str(),
              util::with_commas(r.runtime_summary.count).c_str());

  bench::ShapeCheck check;
  check.expect(r.nominal_wu_mean_seconds > 2.5 * util::kSecondsPerHour &&
                   r.nominal_wu_mean_seconds < 4.5 * util::kSecondsPerHour,
               "packaging targets 3-4 reference hours");
  check.expect_near(r.runtime_summary.mean, 13.0 * util::kSecondsPerHour,
                    0.25, "observed mean run time near 13 h");
  check.expect_near(ratio, 3.96, 0.20,
                    "run-time inflation matches the 3.96x speed-down");
  check.expect(r.runtime_summary.max >
                   3.0 * r.runtime_summary.mean,
               "heavy tail of slow devices / big workunits");
  check.print_summary();
  return check.exit_code();
}
