// Monte-Carlo confidence intervals for the headline reproduction numbers.
//
// Every other bench quotes the default seed; this one runs the campaign
// under 16 independent seeds (in parallel) and reports mean +- 95 % CI, so
// the paper comparison is a statement about the model, not about one draw.
#include <cstdio>

#include "bench_common.hpp"
#include "core/replication.hpp"
#include "util/table.hpp"

int main() {
  using namespace hcmd;

  core::CampaignConfig config;
  config.scale = 0.01;
  const std::size_t replicas = 16;
  const core::ReplicationResult r =
      core::replicate_campaign(config, replicas, 1000);

  struct PaperRef {
    const char* metric;
    double paper;
  };
  const PaperRef refs[] = {
      {"completion_weeks", 26.0},
      {"redundancy_factor", 1.37},
      {"useful_fraction", 0.73},
      {"gross_speeddown", 5.43},
      {"net_speeddown", 3.96},
      {"avg_hcmd_vftp_whole", 16'450.0},
      {"avg_hcmd_vftp_fullpower", 26'248.0},
      {"avg_wcg_vftp_whole", 54'947.0},
      {"results_received", 5'418'010.0},
      {"mean_runtime_hours", 13.0},
  };

  util::Table table("Headline metrics over " + std::to_string(replicas) +
                    " seeds (1/100 scale)");
  table.header({"metric", "paper", "mean", "95% CI", "min", "max"});
  for (const auto& ref : refs) {
    const core::MetricSummary& m = r.metric(ref.metric);
    table.row({ref.metric, util::Table::cell(ref.paper, 2),
               util::Table::cell(m.mean, 2),
               "+-" + util::Table::cell(m.ci95, 2),
               util::Table::cell(m.min, 2), util::Table::cell(m.max, 2)});
  }
  std::printf("%s\n", table.render().c_str());

  bench::ShapeCheck check;
  // The paper value must sit within mean +- max(3 CI, 15% of mean) for the
  // ratio metrics — i.e. the single-seed agreement is not a fluke.
  for (const auto& ref :
       {refs[1], refs[3], refs[4]}) {  // redundancy, gross, net
    const core::MetricSummary& m = r.metric(ref.metric);
    const double band = std::max(3.0 * m.ci95, 0.15 * m.mean);
    check.expect(std::abs(m.mean - ref.paper) <= band,
                 std::string(ref.metric) + " reproduces within its band");
  }
  const core::MetricSummary& weeks = r.metric("completion_weeks");
  check.expect(weeks.stddev < 2.5,
               "completion time is stable across seeds");
  for (const auto& report : r.reports)
    check.expect(report.completed, "every replica completes");
  check.print_summary();
  return check.exit_code();
}
