// Figure 1 — "virtual full-time processors of World Community Grid".
//
// Reproduces the VFTP curve from the grid's launch (2004-11-16) to December
// 2007: overall growth, weekend dips, Christmas 2005/2006 dips and the
// summer 2006 slump, plus the anchor points quoted in the text (54,947
// average over the HCMD period; 74,825 in the week the paper was written).
#include <cstdio>

#include "bench_common.hpp"
#include "util/ascii_plot.hpp"
#include "util/calendar.hpp"
#include "volunteer/population.hpp"

int main() {
  using namespace hcmd;
  const volunteer::WcgPopulationModel model;

  const util::CivilDate from = util::kWcgLaunch;
  const util::CivilDate to{2007, 12, 15};
  const auto daily = model.daily_series(from, to);

  std::printf("Figure 1: WCG virtual full-time processors, %s .. %s\n\n",
              util::format_date(from).c_str(), util::format_date(to).c_str());
  std::printf("%s\n", util::line_chart(daily, 78, 16).c_str());

  // Weekly means, printed quarterly to keep the log compact.
  util::Table table("Quarterly VFTP levels");
  table.header({"date", "VFTP (weekly mean)"});
  for (std::size_t d = 0; d + 7 < daily.size(); d += 91) {
    double week = 0.0;
    for (std::size_t i = d; i < d + 7; ++i) week += daily[i];
    const auto date =
        util::civil_from_days(util::days_from_civil(from) +
                              static_cast<std::int64_t>(d));
    table.row({util::format_date(date),
               util::Table::cell(std::uint64_t(week / 7.0))});
  }
  std::printf("%s\n", table.render().c_str());

  util::Table anchors("Paper anchor points");
  anchors.header({"quantity", "paper", "measured", "dev"});
  const double hcmd_avg =
      model.mean_vftp(util::kHcmdStart, util::kHcmdEnd);
  anchors.row(bench::compare_row("avg VFTP during HCMD project", 54'947,
                                 hcmd_avg));
  const double dec07 = model.mean_vftp({2007, 12, 3}, {2007, 12, 10});
  anchors.row(bench::compare_row("VFTP, week of 2007-12-03", 74'825, dec07));
  const double members =
      model.members_on_day(util::days_from_civil({2007, 12, 10}));
  anchors.row(bench::compare_row("subscribed members (12/2007)", 344'000,
                                 members));
  const double devices =
      model.devices_on_day(util::days_from_civil({2007, 12, 10}));
  anchors.row(bench::compare_row("declared devices (12/2007)", 836'000,
                                 devices));
  std::printf("%s", anchors.render().c_str());

  bench::ShapeCheck check;
  check.expect_near(hcmd_avg, 54'947.0, 0.05, "HCMD-period average VFTP");
  check.expect_near(dec07, 74'825.0, 0.07, "December 2007 VFTP");

  // Growth: the curve rises strongly over the grid's life.
  const double early = model.mean_vftp({2005, 3, 1}, {2005, 4, 1});
  const double late = model.mean_vftp({2007, 10, 1}, {2007, 11, 1});
  check.expect(late > 5.0 * early,
               "VFTP grows by more than 5x from early 2005 to late 2007");

  // Weekend dip: Saturdays below the preceding Fridays on average.
  double fri = 0.0, sat = 0.0;
  int weeks = 0;
  for (std::int64_t day = util::days_from_civil({2006, 1, 6});
       day < util::days_from_civil({2007, 1, 1}); day += 7, ++weeks) {
    fri += model.vftp_on_day(day);
    sat += model.vftp_on_day(day + 1);
  }
  check.expect(sat < fri, "weekend capacity below weekday capacity");

  // Christmas 2005 and 2006 dips against the preceding fortnight.
  for (int year : {2005, 2006}) {
    const double before = model.mean_vftp({year, 12, 1}, {year, 12, 15});
    const double holiday = model.mean_vftp({year, 12, 21},
                                           {year + 1, 1, 4});
    check.expect(holiday < before,
                 "Christmas " + std::to_string(year) + " dip visible");
  }

  // Summer 2006 slump against the adjacent months of the growth curve.
  const double june06 = model.mean_vftp({2006, 6, 1}, {2006, 7, 1});
  const double summer = model.mean_vftp({2006, 7, 15}, {2006, 8, 15});
  check.expect(summer < 1.02 * june06,
               "summer 2006 slump interrupts the growth trend");

  check.print_summary();
  return check.exit_code();
}
