// Table 2 — equivalence between WCG virtual full-time processors and
// dedicated-grid processors, plus the Section 6 speed-down analysis.
//
// Paper: whole period 16,450 VFTP <-> 3,029 dedicated processors; full
// power 26,248 <-> 4,833. Total CPU consumed 8,082:275:17:15:44 = 5.43x the
// reference estimate; 3.96x once the 1.37 redundancy factor is removed.
#include <cstdio>

#include "analysis/speeddown.hpp"
#include "bench_common.hpp"
#include "dedicated/grid.hpp"
#include "util/duration.hpp"

int main() {
  using namespace hcmd;
  const core::CampaignReport r = bench::standard_campaign();

  const double gross = r.speeddown.gross_speeddown();
  const double net = r.speeddown.net_speeddown();

  // Dedicated equivalents: VFTP divided by the measured gross speed-down,
  // which is how the paper builds Table 2.
  const double dedicated_whole = r.avg_hcmd_vftp_whole / gross;
  const double dedicated_full = r.avg_hcmd_vftp_fullpower / gross;

  std::printf("Table 2: WCG virtual full-time processors vs dedicated-grid "
              "processors\n\n");
  util::Table table("Equivalence");
  table.header({"grid", "whole period", "paper", "full power", "paper"});
  table.row({"World Community Grid",
             util::Table::cell(std::uint64_t(r.avg_hcmd_vftp_whole)),
             "16,450",
             util::Table::cell(std::uint64_t(r.avg_hcmd_vftp_fullpower)),
             "26,248"});
  table.row({"Dedicated grid",
             util::Table::cell(std::uint64_t(dedicated_whole)), "3,029",
             util::Table::cell(std::uint64_t(dedicated_full)), "4,833"});
  std::printf("%s\n", table.render().c_str());

  const double consumed = r.speeddown.reported_runtime_seconds / r.scale;
  std::printf("Total CPU consumed: %s (paper 8082:275:17:15:44)\n",
              util::format_ydhms(consumed).c_str());
  std::printf("Reference estimate: %s (paper 1488:237:19:45:54)\n\n",
              util::format_ydhms(r.total_reference_seconds).c_str());

  util::Table factors("Speed-down analysis");
  factors.header({"quantity", "paper", "measured", "dev"});
  factors.row(bench::compare_row("gross speed-down (incl. redundancy)", 5.43,
                                 gross, 2));
  factors.row(bench::compare_row("redundancy factor", 1.37,
                                 r.redundancy_factor, 3));
  factors.row(bench::compare_row("net speed-down", 3.96, net, 2));
  std::printf("%s\n", factors.render().c_str());

  const analysis::SpeeddownDecomposition d =
      analysis::decompose(volunteer::DeviceParams{}, 2.1);
  std::printf("Decomposition of the net speed-down (fleet parameters):\n");
  std::printf("  CPU throttle (UD default 60%%)      : %.3f\n",
              d.throttle_factor);
  std::printf("  lowest-priority starvation          : %.3f\n",
              d.contention_factor);
  std::printf("  screensaver overhead                : %.3f\n",
              d.screensaver_factor);
  std::printf("  device speed vs Opteron 2 GHz       : %.3f\n",
              d.device_speed_factor);
  std::printf("  closed-form net speed-down          : %.2f\n",
              d.predicted_net_speeddown());
  std::printf("  (checkpoint/interruption losses supply the remainder "
              "to %.2f)\n",
              net);

  // Section 6's forward estimate: 74,825 VFTP / 3.96 ~ 18,895 dedicated.
  const double dec07_equiv = 74'825.0 / net;
  std::printf("\n74,825 VFTP (Dec 2007) / measured net speed-down = %.0f "
              "dedicated processors (paper: 18,895)\n",
              dec07_equiv);

  bench::ShapeCheck check;
  check.expect_near(gross, 5.43, 0.12, "gross speed-down");
  check.expect_near(net, 3.96, 0.12, "net speed-down");
  check.expect_near(dedicated_whole, 3'029.0, 0.25,
                    "dedicated equivalent, whole period");
  check.expect_near(dedicated_full, 4'833.0, 0.25,
                    "dedicated equivalent, full power");
  check.expect(gross > net && net > 1.0,
               "volunteer processors strictly slower than dedicated");
  check.expect_near(dec07_equiv, 18'895.0, 0.15,
                    "December 2007 dedicated-equivalent estimate");
  check.expect(d.predicted_net_speeddown() < net + 1.0 &&
                   d.predicted_net_speeddown() > 0.6 * net,
               "closed-form decomposition explains most of the factor");
  check.print_summary();
  return check.exit_code();
}
