// Ablation — which client-side mechanisms produce the 3.96x speed-down?
//
// Section 6 attributes the factor to wall-clock accounting at a 60% CPU
// throttle, lowest-priority starvation, the screensaver, slower devices,
// and interruption/checkpoint losses. This bench re-runs the campaign with
// each mechanism idealised in turn and reports the resulting speed-down —
// the reproduction's answer to "these items can explain about half of the
// 3.96 value".
#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace hcmd;

  struct Variant {
    const char* name;
    void (*tweak)(core::CampaignConfig&);
  };
  const Variant variants[] = {
      {"baseline (paper configuration)", [](core::CampaignConfig&) {}},
      {"no CPU throttle (100% instead of 60%)",
       [](core::CampaignConfig& c) {
         c.devices.throttle_default = 1.0;
         c.devices.unthrottled_fraction = 1.0;
       }},
      {"no owner contention (dedicated priority)",
       [](core::CampaignConfig& c) {
         c.devices.contention_mean = 1.0;
         c.devices.contention_spread = 0.0;
       }},
      {"no screensaver overhead",
       [](core::CampaignConfig& c) { c.devices.screensaver_overhead = 1.0; }},
      {"reference-speed devices",
       [](core::CampaignConfig& c) {
         c.devices.speed_median = 1.0;
         c.devices.speed_sigma = 0.0;
         c.devices.speed_improvement_per_year = 0.0;
       }},
      {"no interruptions (always-on fleet)",
       [](core::CampaignConfig& c) {
         c.devices.always_on_fraction = 1.0;
         c.devices.abandon_rate = 0.0;
       }},
      {"BOINC CPU-time accounting (phase II plan)",
       [](core::CampaignConfig& c) {
         c.devices.accounting = volunteer::AccountingMode::kBoincCpuTime;
       }},
  };

  util::Table table("Speed-down ablation (campaign at 1/50 scale)");
  table.header({"variant", "gross", "net", "redundancy", "weeks",
                "mean WU runtime (h)"});

  double baseline_net = 0.0, no_throttle_net = 0.0, boinc_net = 0.0;
  double always_on_net = 0.0, ref_speed_net = 0.0;
  for (const auto& v : variants) {
    core::CampaignConfig config;
    config.scale = 0.02;
    v.tweak(config);
    const core::CampaignReport r = core::run_campaign(config);
    const double gross = r.speeddown.gross_speeddown();
    const double net = r.speeddown.net_speeddown();
    table.row({v.name, util::Table::cell(gross, 2),
               util::Table::cell(net, 2),
               util::Table::cell(r.redundancy_factor, 2),
               util::Table::cell(r.completion_weeks, 1),
               util::Table::cell(r.runtime_summary.mean / 3600.0, 1)});
    if (std::string(v.name).starts_with("baseline")) baseline_net = net;
    if (std::string(v.name).starts_with("no CPU throttle"))
      no_throttle_net = net;
    if (std::string(v.name).starts_with("BOINC")) boinc_net = net;
    if (std::string(v.name).starts_with("no interruptions"))
      always_on_net = net;
    if (std::string(v.name).starts_with("reference-speed"))
      ref_speed_net = net;
  }
  std::printf("%s", table.render().c_str());

  bench::ShapeCheck check;
  check.expect_near(baseline_net, 3.96, 0.15, "baseline net speed-down");
  check.expect(no_throttle_net < 0.75 * baseline_net,
               "removing the 60% throttle removes a large share of the "
               "slow-down (paper: ~half comes from UD accounting + "
               "throttle)");
  check.expect(ref_speed_net < baseline_net,
               "reference-speed devices close part of the gap");
  check.expect(always_on_net < baseline_net,
               "interruption losses are a real component");
  check.expect(boinc_net < baseline_net,
               "BOINC CPU-time accounting reports less inflated run time "
               "(the paper's phase II expectation)");
  check.print_summary();
  return check.exit_code();
}
