// Ablation — validation policy vs science quality.
//
// Redundant computing exists "to identify and reject erroneous results"
// (Section 5.1). This bench injects a realistic hazard the range check
// cannot see — a small fraction of chronically flaky devices producing
// silently corrupt results — and compares validation policies on the two
// axes that matter: how much corruption reaches the science archive, and
// how much volunteer capacity the policy burns (redundancy factor /
// campaign length).
#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace hcmd;

  auto base_config = [] {
    core::CampaignConfig config;
    config.scale = 0.02;
    // The hazard: 3 % of devices silently corrupt 15 % of their results.
    config.devices.flaky_fraction = 0.03;
    config.devices.flaky_silent_error_rate = 0.15;
    // Start from a bare server (no phase-I quorum period) so each policy's
    // effect is isolated.
    config.server.validation.quorum2_until = 0.0;
    config.server.validation.spot_check_fraction = 0.0;
    return config;
  };

  struct Row {
    const char* name;
    core::CampaignReport report;
  };
  std::vector<Row> rows;

  {
    auto config = base_config();
    rows.push_back({"range check only", core::run_campaign(config)});
  }
  {
    auto config = base_config();
    config.server.validation.spot_check_fraction = 0.27;
    rows.push_back({"uniform 27% spot check", core::run_campaign(config)});
  }
  {
    auto config = base_config();
    config.server.validation.adaptive = true;
    rows.push_back({"adaptive replication", core::run_campaign(config)});
  }
  {
    auto config = base_config();
    config.server.validation.quorum2_until = 1e12;  // always quorum 2
    config.max_weeks = 60.0;
    rows.push_back({"quorum 2 always", core::run_campaign(config)});
  }

  util::Table table("Validation policy ablation (3% flaky devices)");
  table.header({"policy", "corrupt assimilated", "corrupt rate",
                "mismatches caught", "redundancy", "weeks"});
  for (const auto& row : rows) {
    const auto& c = row.report.counters;
    const double rate =
        c.workunits_completed
            ? static_cast<double>(c.corrupt_assimilated) /
                  static_cast<double>(c.workunits_completed)
            : 0.0;
    table.row({row.name, util::Table::cell(c.corrupt_assimilated),
               util::Table::cell(100.0 * rate, 3) + "%",
               util::Table::cell(c.quorum_mismatches + c.late_mismatches),
               util::Table::cell(row.report.redundancy_factor, 2),
               util::Table::cell(row.report.completion_weeks, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  const auto corrupt_rate = [](const Row& row) {
    const auto& c = row.report.counters;
    return c.workunits_completed
               ? static_cast<double>(c.corrupt_assimilated) /
                     static_cast<double>(c.workunits_completed)
               : 0.0;
  };
  const Row& none = rows[0];
  const Row& spot = rows[1];
  const Row& adaptive = rows[2];
  const Row& quorum = rows[3];

  std::printf("Reading: quorum-2 buys the cleanest archive at ~2x the "
              "capacity; adaptive\nreplication concentrates the checking on "
              "unproven devices, approaching quorum\nquality at a fraction "
              "of the redundancy — the reason BOINC later adopted it.\n");

  bench::ShapeCheck check;
  check.expect(corrupt_rate(none) > 0.001,
               "without comparison, corruption reaches the archive");
  check.expect(corrupt_rate(quorum) < 0.35 * corrupt_rate(none),
               "quorum 2 removes most of the corruption");
  check.expect(corrupt_rate(adaptive) < 0.6 * corrupt_rate(none),
               "adaptive replication removes a large share of corruption");
  check.expect(adaptive.report.redundancy_factor <
                   quorum.report.redundancy_factor - 0.2,
               "adaptive costs materially less redundancy than quorum 2");
  check.expect(spot.report.counters.late_mismatches > 0,
               "spot checks detect corruption after the fact");
  check.expect(none.report.completed && spot.report.completed &&
                   adaptive.report.completed && quorum.report.completed,
               "all policies complete the campaign");
  check.print_summary();
  return check.exit_code();
}
